//! Ready-queue parallel plan execution with work stealing.
//!
//! The compiled plan's topological `order` hides abundant inter-operator
//! parallelism: Census fans one scan out into several extractors, and the
//! IE pipeline runs five independent feature UDFs over the same candidate
//! set. Earlier versions executed the plan in dependency *waves* with a
//! barrier between levels, which left speedup on the table: one slow
//! member of a wave gated every node of the next, exactly on the wide
//! DAGs where parallelism matters most.
//!
//! The executor here is barrier-free. Each non-pruned node carries an
//! atomic count of unsatisfied parents; a node becomes ready the instant
//! its last parent finishes. Workers pull ready nodes from a per-worker
//! local deque (LIFO, for locality along just-unlocked dependency
//! chains), falling back to a shared injector seeded with the initially
//! ready nodes and then to stealing from other workers' deques (FIFO, so
//! thieves take the oldest — widest-fanout — work). When the injector
//! holds more than one entry, workers pop the node with the largest
//! *downstream critical-path estimate*
//! ([`crate::recompute::critical_path_priority_us`], built from the same
//! per-node cost data as the wave cost estimate) instead of pure FIFO:
//! starting the longest chain first keeps its dependents flowing while
//! shallow work fills the remaining slots. Plan order breaks ties, and
//! merge semantics are untouched — the plan-order merge cursor makes
//! results independent of execution order by construction. The thread
//! count is capped at [`crate::EngineConfig::parallelism`].
//!
//! [`ExecStrategy::WaveBarrier`] keeps the historical wave executor
//! alive solely as the baseline that `benches/scheduler.rs` and the
//! regression CI measure the ready queue against;
//! [`crate::recompute::build_waves`] /
//! [`crate::recompute::wave_levels`] likewise survive as the
//! critical-path cost estimator and the source of *derived* per-wave
//! report timings.
//!
//! # Determinism
//!
//! Parallel execution must be observationally identical to sequential
//! execution — the paper's reuse correctness argument ("a materialized
//! result must equal its recomputation") extends to the scheduler. Raw
//! node execution (compute or load) is free of side effects, so ready
//! nodes may run in any interleaving; everything stateful — cost-model
//! observations, the online materialization decision (which consults the
//! evolving storage budget), and metric harvesting — happens in the
//! `merge` callback, which the calling thread invokes **strictly in plan
//! order** while workers keep executing: a cursor walks `plan.order` and
//! stalls at the first node whose raw result is not yet available. The
//! merged outcome stream is therefore identical at any thread count,
//! including 1.
//!
//! # Failure determinism
//!
//! A failed run surfaces the error of the **plan-order-earliest failing
//! node**, at every thread count. When a node fails, the executor stops
//! scheduling nodes that come after it in plan order but keeps executing
//! everything before it (any earlier node could still fail and take over
//! as the reported error; plan order is topological, so all its
//! dependencies precede it too). Merges therefore commit for exactly the
//! nodes preceding the failing node in plan order — the same prefix, with
//! the same side effects (materializations, cost observations), that the
//! sequential loop commits before erroring at that same node.

use crate::compiler::CompiledPlan;
use crate::ops::NodeOutput;
use crate::pool::{Job, WorkerPool};
use crate::recompute::{wave_levels, NodeState};
use crate::report::WaveReport;
use crate::store::IntermediateStore;
use crate::workflow::{NodeId, Workflow};
use crate::{HelixError, Result};
use helix_dataflow::par::panic_message;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::Instant;

/// How many worker threads the engine should use by default: the
/// `HELIX_PARALLELISM` environment variable when set to a positive
/// integer (the CI equivalence matrix forces `1` and `2` this way),
/// otherwise the machine's available parallelism. (One of the knobs
/// unified behind [`crate::EngineConfig::from_env`].)
pub fn default_parallelism() -> usize {
    crate::config_env::parallelism()
}

/// Fallback for [`default_partition_rows`] when `HELIX_PARTITION_ROWS`
/// is unset: measured on the scaled benchmark workloads as the smallest
/// slice for which the split/merge overhead stays well under the
/// per-slice compute time (see `docs/PERFORMANCE.md`).
pub const DEFAULT_PARTITION_ROWS: usize = 4096;

/// Rows-per-partition threshold for operator-level data parallelism: the
/// `HELIX_PARTITION_ROWS` environment variable when set to a positive
/// integer, otherwise [`DEFAULT_PARTITION_ROWS`]. A partitionable node
/// splits only when its input holds at least twice this many rows, so
/// every partition has at least the threshold's worth of work. (One of
/// the knobs unified behind [`crate::EngineConfig::from_env`].)
pub fn default_partition_rows() -> usize {
    crate::config_env::partition_rows()
}

/// Hard cap on partitions per node: beyond the machine's useful fan-out,
/// more slices only add merge overhead.
const MAX_PARTITIONS: usize = 32;

/// Tuning knobs for [`execute_plan_opts`].
#[derive(Debug, Clone)]
pub struct ExecOpts {
    /// Worker-slot budget, counting the calling thread (which merges
    /// *and* helps execute). `1` runs the classic sequential loop.
    pub parallelism: usize,
    /// Rows-per-partition threshold for data-parallel operators (see
    /// [`default_partition_rows`]).
    pub partition_rows: usize,
    /// Per-node partition thresholds by [`NodeId::index`], overriding
    /// `partition_rows` where present. The engine derives these from the
    /// optimizer memo's observed per-row costs
    /// ([`partition_rows_for_observed`]); `None` uses the scalar
    /// threshold for every node. Purely a performance hint — partition
    /// boundaries never change results.
    pub node_partition_rows: Option<Arc<Vec<usize>>>,
    /// Worker pool to draw helper threads from. `None` falls back to a
    /// process-global pool — the engine passes its own so sessions share
    /// one warmed set of threads.
    pub pool: Option<Arc<WorkerPool>>,
}

impl Default for ExecOpts {
    fn default() -> Self {
        ExecOpts {
            parallelism: default_parallelism(),
            partition_rows: default_partition_rows(),
            node_partition_rows: None,
            pool: None,
        }
    }
}

/// Target wall-clock seconds per partition when sizing from observed
/// per-row cost: small enough that a partitioned node spreads across
/// workers, large enough that split/merge overhead stays negligible.
const TARGET_PARTITION_SECS: f64 = 0.005;

/// Derives a rows-per-partition threshold from a memo-observed per-row
/// compute cost: enough rows that one partition takes about
/// `TARGET_PARTITION_SECS` (5 ms), clamped to a sane range. Falls back
/// to `fallback` when the observation is degenerate.
pub fn partition_rows_for_observed(per_row_secs: f64, fallback: usize) -> usize {
    if !per_row_secs.is_finite() || per_row_secs <= 0.0 {
        return fallback.max(1);
    }
    let rows = (TARGET_PARTITION_SECS / per_row_secs).round();
    // Clamp: never slice finer than 64 rows (overhead) and never demand
    // more than ~1M rows per slice (that disables partitioning outright
    // for any realistic input, which is the right call for ultra-cheap
    // per-row operators).
    (rows as usize).clamp(64, 1 << 20)
}

/// Process-global worker pool for standalone [`execute_plan`] callers
/// (the engine owns its own). Never dropped — its threads park idle for
/// the life of the process.
fn global_pool() -> &'static Arc<WorkerPool> {
    static POOL: OnceLock<Arc<WorkerPool>> = OnceLock::new();
    POOL.get_or_init(|| Arc::new(WorkerPool::new()))
}

/// Which executor runs the plan. [`execute_plan`] picks automatically;
/// the explicit variants exist for the scheduler benchmark and the
/// equivalence tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecStrategy {
    /// One node at a time in plan order — the classic iteration loop and
    /// the behavior of `parallelism = 1`.
    Sequential,
    /// The historical barrier executor: dependency waves with a join
    /// between levels. Kept only as the baseline the ready queue is
    /// benchmarked against (`benches/scheduler.rs`).
    WaveBarrier,
    /// The dependency-counting ready-queue executor with per-worker
    /// deques and work stealing — what the engine uses at
    /// `parallelism > 1`.
    ReadyQueue,
}

/// The raw, side-effect-free result of running one node.
#[derive(Debug)]
pub struct ExecutedNode {
    /// Wall-clock seconds spent computing or loading this node.
    pub secs: f64,
    /// `Some(bytes_read)` when the node was loaded from the store,
    /// `None` when it was computed.
    pub loaded_bytes: Option<u64>,
    /// Number of data-chunk partitions served from the store while
    /// *computing* this node (see [`crate::slicing::chunk_plan`]); `0`
    /// for whole-node loads and chunk-free computes.
    pub chunks_loaded: usize,
}

/// Everything [`execute_plan`] hands back to the engine.
#[derive(Debug)]
pub struct ExecutionResult {
    /// Node outputs by [`NodeId::index`] (`None` for pruned nodes).
    pub outputs: Vec<Option<NodeOutput>>,
    /// Per-wave timings *derived* from per-node durations and the plan's
    /// dependency levels (the primary record is per node; see
    /// [`crate::report::NodeReport`]). At `parallelism = 1` a wave's
    /// `secs` is the sum of member durations; otherwise it is the slowest
    /// member's duration.
    pub waves: Vec<WaveReport>,
}

/// Raw per-node result held until the merge cursor reaches it.
struct RawResult {
    output: NodeOutput,
    executed: ExecutedNode,
}

/// Executes a compiled plan, invoking `merge` once per non-pruned node in
/// plan order with the node's raw result.
///
/// The merge callback owns every stateful step (cost observation,
/// materialization, metric harvesting); see the module docs for why that
/// split makes parallel execution deterministic. `parallelism = 1` runs
/// the classic sequential loop: each node executes and merges before the
/// next starts. Higher counts use the ready-queue executor, with `merge`
/// still running on the calling thread.
///
/// # Errors
/// Propagates node execution failures (deterministically the
/// plan-order-earliest failing node's error) and merge failures.
pub fn execute_plan<M>(
    workflow: &Workflow,
    plan: &CompiledPlan,
    store: &IntermediateStore,
    parallelism: usize,
    merge: M,
) -> Result<ExecutionResult>
where
    M: FnMut(NodeId, &ExecutedNode, &NodeOutput) -> Result<()>,
{
    let opts = ExecOpts {
        parallelism,
        ..ExecOpts::default()
    };
    execute_plan_opts(workflow, plan, store, &opts, merge)
}

/// [`execute_plan`] with explicit [`ExecOpts`]: partition threshold and
/// worker pool included. The engine calls this with its persistent pool;
/// `parallelism <= 1` runs the sequential loop (no partitioning — one
/// thread gains nothing from splitting a node).
///
/// # Errors
/// Same contract as [`execute_plan`].
pub fn execute_plan_opts<M>(
    workflow: &Workflow,
    plan: &CompiledPlan,
    store: &IntermediateStore,
    opts: &ExecOpts,
    mut merge: M,
) -> Result<ExecutionResult>
where
    M: FnMut(NodeId, &ExecutedNode, &NodeOutput) -> Result<()>,
{
    if opts.parallelism <= 1 {
        execute_sequential(workflow, plan, store, merge)
    } else {
        execute_ready_queue(workflow, plan, store, opts, &mut merge)
    }
}

/// [`execute_plan`] with an explicit [`ExecStrategy`] — the entry point
/// the scheduler benchmark uses to compare the ready queue against the
/// wave baseline on identical plans.
///
/// # Errors
/// Same contract as [`execute_plan`].
pub fn execute_plan_with<M>(
    workflow: &Workflow,
    plan: &CompiledPlan,
    store: &IntermediateStore,
    strategy: ExecStrategy,
    parallelism: usize,
    mut merge: M,
) -> Result<ExecutionResult>
where
    M: FnMut(NodeId, &ExecutedNode, &NodeOutput) -> Result<()>,
{
    match strategy {
        ExecStrategy::Sequential => execute_sequential(workflow, plan, store, merge),
        ExecStrategy::WaveBarrier => {
            execute_wave_barrier(workflow, plan, store, parallelism.max(2), &mut merge)
        }
        ExecStrategy::ReadyQueue => {
            let opts = ExecOpts {
                parallelism: parallelism.max(2),
                ..ExecOpts::default()
            };
            execute_ready_queue(workflow, plan, store, &opts, &mut merge)
        }
    }
}

fn plan_position(plan: &CompiledPlan, index: usize) -> usize {
    plan.order
        .iter()
        .position(|id| id.index() == index)
        .unwrap_or(usize::MAX)
}

/// Derives per-wave timings from per-node durations: `secs[i]` indexed by
/// node, `None` for nodes that did not execute. `sum_members` selects the
/// sequential convention (sum of member durations) over the parallel one
/// (slowest member).
fn derive_waves(
    workflow: &Workflow,
    states: &[NodeState],
    secs: &[Option<f64>],
    sum_members: bool,
) -> Vec<WaveReport> {
    let levels = wave_levels(workflow, states);
    let n_waves = levels.iter().flatten().copied().max().map_or(0, |l| l + 1);
    let mut waves = vec![
        WaveReport {
            nodes: 0,
            secs: 0.0
        };
        n_waves
    ];
    for (i, level) in levels.iter().enumerate() {
        let Some(level) = level else { continue };
        let Some(node_secs) = secs[i] else { continue };
        waves[*level].nodes += 1;
        if sum_members {
            waves[*level].secs += node_secs;
        } else {
            waves[*level].secs = waves[*level].secs.max(node_secs);
        }
    }
    waves
}

/// The sequential path: execute and merge one node at a time in plan
/// order — exactly the engine's historical iteration loop.
fn execute_sequential<M>(
    workflow: &Workflow,
    plan: &CompiledPlan,
    store: &IntermediateStore,
    mut merge: M,
) -> Result<ExecutionResult>
where
    M: FnMut(NodeId, &ExecutedNode, &NodeOutput) -> Result<()>,
{
    let n = workflow.len();
    let mut outputs: Vec<Option<NodeOutput>> = (0..n).map(|_| None).collect();
    let mut secs: Vec<Option<f64>> = vec![None; n];
    for &id in &plan.order {
        let i = id.index();
        if plan.states[i] == NodeState::Prune {
            continue;
        }
        let raw = run_node(workflow, plan, store, id, |p| outputs[p.index()].as_ref())?;
        secs[i] = Some(raw.executed.secs);
        merge(id, &raw.executed, &raw.output)?;
        outputs[i] = Some(raw.output);
    }
    let waves = derive_waves(workflow, &plan.states, &secs, true);
    Ok(ExecutionResult { outputs, waves })
}

// ---------------------------------------------------------------------------
// Ready-queue executor
// ---------------------------------------------------------------------------

/// Injector plus the sleep coordination for idle workers. Pushes to any
/// queue bump `notify` under this lock, so a worker that scanned every
/// queue empty while holding it cannot miss the wakeup.
struct InjectorState {
    /// Globally visible ready tasks (seeded with the dependency-free
    /// nodes; partitioned nodes fan their slices out here). With one
    /// entry it behaves as a FIFO; with more, workers pop the entry with
    /// the largest downstream critical-path estimate
    /// ([`crate::recompute::critical_path_priority_us`]), plan order
    /// breaking ties — starting the longest chain first shrinks the
    /// makespan on wide plans without touching merge semantics (the
    /// plan-order merge cursor is ordering-oblivious).
    ready: VecDeque<Task>,
}

/// One schedulable unit: a whole node, or one partition of a node whose
/// input was split for data parallelism.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Task {
    /// Execute (or, for a wide node, partition) node `i`.
    Node(usize),
    /// Execute slice `part` of a partitioned node.
    Part { node: usize, part: usize },
}

impl Task {
    fn node(self) -> usize {
        match self {
            Task::Node(i) => i,
            Task::Part { node, .. } => node,
        }
    }

    fn part(self) -> usize {
        match self {
            Task::Node(_) => 0,
            Task::Part { part, .. } => part,
        }
    }
}

/// One slice's outcome: its output plus compute seconds, or its error.
type SliceResult = std::result::Result<(NodeOutput, f64), HelixError>;

/// Fan-out bookkeeping for one partitioned node: created when the node's
/// `Task::Node` runs, completed by whichever worker finishes the last
/// slice. Slice outputs are assembled **in index order**, so the merged
/// output — and, on failure, the surfaced error (the slice holding the
/// globally first failing row) — is identical to a whole-node run.
struct PartitionState {
    /// `[start, end)` row ranges, covering the input exactly.
    ranges: Vec<(usize, usize)>,
    /// Per-slice outcome, `take`n by the assembling worker.
    outs: Vec<Mutex<Option<SliceResult>>>,
    /// Slices still running; the decrement-to-zero worker assembles.
    remaining: AtomicUsize,
}

/// Shared state of one ready-queue execution. The executor *owns* clones
/// of the workflow, plan, and store handle so pool workers (plain
/// `'static` jobs, unlike the scoped threads of earlier versions) can
/// hold it via `Arc`; the calling thread drives the merge cursor
/// concurrently.
struct ReadyExecutor {
    workflow: Workflow,
    plan: CompiledPlan,
    store: IntermediateStore,
    /// Rows-per-partition threshold ([`ExecOpts::partition_rows`]).
    partition_rows: usize,
    /// Per-node threshold overrides ([`ExecOpts::node_partition_rows`]).
    node_partition_rows: Option<Arc<Vec<usize>>>,
    /// Plan position by node index (`usize::MAX` for pruned nodes).
    pos: Vec<usize>,
    /// Downstream critical-path estimate per node (µs) — the injector's
    /// pop priority.
    prio: Vec<u64>,
    /// Non-pruned compute children to notify per node (one entry per
    /// parent edge, mirroring the initial `deps` counts).
    children: Vec<Vec<usize>>,
    /// Unsatisfied-parent counts; a node enqueues when its count hits 0.
    deps: Vec<AtomicUsize>,
    /// Write-once raw results, readable by children (for parent outputs)
    /// and by the merge cursor.
    results: Vec<OnceLock<RawResult>>,
    /// Write-once partition fan-out state per node (`set` only for nodes
    /// that actually split).
    parts: Vec<OnceLock<PartitionState>>,
    /// Plan position of the earliest failure observed so far
    /// (`usize::MAX` when none): workers skip nodes past it.
    min_fail: AtomicUsize,
    /// The earliest failure's `(plan position, error)` — authoritative
    /// where `min_fail` is the advisory fast path.
    failure: Mutex<Option<(usize, HelixError)>>,
    /// Set by the merge loop once the outcome is decided; workers exit.
    shutdown: AtomicBool,
    injector: Mutex<InjectorState>,
    /// Workers sleep here when every queue is empty.
    work_cv: Condvar,
    /// Per-worker local deques: owners push/pop the back, thieves steal
    /// from the front.
    locals: Vec<Mutex<VecDeque<Task>>>,
    /// The plan position the merge cursor is stalled on (`usize::MAX`
    /// while draining): workers skip the merger wakeup for completions
    /// that cannot advance the cursor.
    waiting_pos: AtomicUsize,
    /// Completed-node generation counter; the merge loop sleeps on it.
    progress: Mutex<u64>,
    progress_cv: Condvar,
}

impl ReadyExecutor {
    fn new(
        workflow: &Workflow,
        plan: &CompiledPlan,
        store: &IntermediateStore,
        workers: usize,
        partition_rows: usize,
        node_partition_rows: Option<Arc<Vec<usize>>>,
    ) -> Self {
        let n = workflow.len();
        let mut pos = vec![usize::MAX; n];
        for (k, id) in plan.order.iter().enumerate() {
            pos[id.index()] = k;
        }
        let mut children: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut dep_counts = vec![0usize; n];
        for &id in &plan.order {
            let i = id.index();
            if plan.states[i] != NodeState::Compute {
                continue;
            }
            for parent in &workflow.node(id).parents {
                let p = parent.index();
                if plan.states[p] != NodeState::Prune {
                    children[p].push(i);
                    dep_counts[i] += 1;
                }
            }
        }
        let mut ready = VecDeque::new();
        for &id in &plan.order {
            let i = id.index();
            if plan.states[i] != NodeState::Prune && dep_counts[i] == 0 {
                ready.push_back(Task::Node(i));
            }
        }
        let prio = crate::recompute::critical_path_priority_us(workflow, &plan.states, &plan.costs);
        ReadyExecutor {
            workflow: workflow.clone(),
            plan: plan.clone(),
            store: store.clone(),
            partition_rows,
            node_partition_rows,
            pos,
            prio,
            children,
            deps: dep_counts.into_iter().map(AtomicUsize::new).collect(),
            results: (0..n).map(|_| OnceLock::new()).collect(),
            parts: (0..n).map(|_| OnceLock::new()).collect(),
            min_fail: AtomicUsize::new(usize::MAX),
            failure: Mutex::new(None),
            shutdown: AtomicBool::new(false),
            injector: Mutex::new(InjectorState { ready }),
            work_cv: Condvar::new(),
            locals: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            waiting_pos: AtomicUsize::new(usize::MAX),
            progress: Mutex::new(0),
            progress_cv: Condvar::new(),
        }
    }

    /// Pops the injector entry with the highest downstream
    /// critical-path priority (plan order breaks ties, then lower slice
    /// index; a single entry pops straight off the front). The injector
    /// is short-lived and small — seeded ready tasks drain into local
    /// deques immediately — so a linear scan beats maintaining a heap.
    fn pop_injector(&self, injector: &mut InjectorState) -> Option<Task> {
        if injector.ready.len() <= 1 {
            return injector.ready.pop_front();
        }
        let key = |t: Task| {
            let i = t.node();
            (
                self.prio[i],
                std::cmp::Reverse(self.pos[i]),
                std::cmp::Reverse(t.part()),
            )
        };
        let mut best = 0usize;
        for k in 1..injector.ready.len() {
            if key(injector.ready[k]) > key(injector.ready[best]) {
                best = k;
            }
        }
        injector.ready.remove(best)
    }

    /// Pops the next ready node for worker `me`: own deque (LIFO), then
    /// the injector (highest critical-path priority first), then stealing
    /// (FIFO); sleeps when everything is empty. Returns `None` on
    /// shutdown.
    fn next_task(&self, me: usize) -> Option<Task> {
        if self.shutdown.load(Ordering::Acquire) {
            return None;
        }
        if let Some(t) = lock(&self.locals[me]).pop_back() {
            return Some(t);
        }
        let mut injector = lock(&self.injector);
        loop {
            if self.shutdown.load(Ordering::Acquire) {
                return None;
            }
            if let Some(t) = self.pop_injector(&mut injector) {
                return Some(t);
            }
            if let Some(t) = self.steal(me) {
                return Some(t);
            }
            // Pushes notify under the injector lock, which we hold since
            // the scans above — no wakeup can slip past into the wait.
            injector = self
                .work_cv
                .wait(injector)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    fn steal(&self, me: usize) -> Option<Task> {
        for (w, victim) in self.locals.iter().enumerate() {
            if w == me {
                continue;
            }
            if let Some(t) = lock(victim).pop_front() {
                return Some(t);
            }
        }
        None
    }

    /// Executes one task on worker `me`. Returns a follow-on task for the
    /// worker to continue into directly (chains never touch the queues).
    fn run_task(&self, me: usize, task: Task) -> Option<Task> {
        match task {
            Task::Node(i) => self.run_node_task(me, i),
            Task::Part { node, part } => self.run_part(me, node, part),
        }
    }

    /// Collects the already-computed outputs of `id`'s parents, in
    /// declaration order (the same order `exec::execute` sees).
    fn parent_outputs(&self, id: NodeId) -> Result<Vec<&NodeOutput>> {
        let node = self.workflow.node(id);
        let mut outputs = Vec::with_capacity(node.parents.len());
        for parent in &node.parents {
            outputs.push(
                self.results[parent.index()]
                    .get()
                    .map(|raw| &raw.output)
                    .ok_or_else(|| {
                        HelixError::Exec(format!(
                            "parent `{}` of `{}` unavailable (plan bug)",
                            self.workflow.node(*parent).name,
                            node.name
                        ))
                    })?,
            );
        }
        Ok(outputs)
    }

    /// Executes node `i` on worker `me` — splitting it into partitions
    /// first when it is a wide data-parallel compute node — recording the
    /// result, enqueuing any children it readies, and waking the merge
    /// cursor when the completion can advance it.
    /// Effective rows-per-partition threshold for node `i`: the memo-
    /// derived per-node override when present, otherwise the scalar knob.
    fn threshold_for(&self, i: usize) -> usize {
        self.node_partition_rows
            .as_ref()
            .and_then(|rows| rows.get(i).copied())
            .unwrap_or(self.partition_rows)
            .max(1)
    }

    fn run_node_task(&self, me: usize, i: usize) -> Option<Task> {
        if self.shutdown.load(Ordering::Acquire) {
            // A merge error ended the run; stop chaining continuations.
            return None;
        }
        if self.pos[i] > self.min_fail.load(Ordering::Acquire) {
            // Past the earliest failure in plan order: the sequential loop
            // would never have reached this node, so drop it unexecuted.
            return None;
        }
        let id = NodeId(i as u32);
        if self.plan.states[i] == NodeState::Compute && self.locals.len() > 1 {
            if let Ok(parents) = self.parent_outputs(id) {
                let rows = crate::exec::partitionable_rows(&self.workflow.node(id).kind, &parents);
                if let Some(rows) = rows {
                    if rows >= self.threshold_for(i).saturating_mul(2) {
                        drop(parents);
                        return self.start_partitioned(me, i, rows);
                    }
                }
            }
            // A missing parent falls through to `run_node`, which reports
            // the plan bug with the standard error.
        }
        let outcome = run_node(&self.workflow, &self.plan, &self.store, id, |p| {
            self.results[p.index()].get().map(|raw| &raw.output)
        });
        let continuation = match outcome {
            Ok(raw) => self.finish_ok(me, i, raw),
            Err(err) => {
                self.record_failure(self.pos[i], err);
                None
            }
        };
        self.wake_merger(i);
        continuation
    }

    /// Splits ready node `i` (whose first data input holds `rows` rows)
    /// into deterministic, even row ranges, fans slices 1.. out through
    /// the injector for idle workers to grab, and runs slice 0 itself.
    /// The partition count depends only on `rows` and the threshold —
    /// never on how many workers happen to be idle — so the split (and
    /// with it every slice boundary) is reproducible run to run.
    fn start_partitioned(&self, me: usize, i: usize, rows: usize) -> Option<Task> {
        let threshold = self.threshold_for(i);
        let count = rows
            .div_ceil(threshold)
            .min(MAX_PARTITIONS)
            .min(rows)
            .max(1);
        let base = rows / count;
        let extra = rows % count;
        let mut ranges = Vec::with_capacity(count);
        let mut start = 0usize;
        for k in 0..count {
            let len = base + usize::from(k < extra);
            ranges.push((start, start + len));
            start += len;
        }
        debug_assert_eq!(start, rows, "ranges must cover the input exactly");
        let state = PartitionState {
            ranges,
            outs: (0..count).map(|_| Mutex::new(None)).collect(),
            remaining: AtomicUsize::new(count),
        };
        let set = self.parts[i].set(state);
        debug_assert!(set.is_ok(), "node partitioned twice");
        if count > 1 {
            // Publish the sibling slices before running our own, so idle
            // workers overlap with slice 0. Notify under the injector
            // lock (see `next_task` for why that cannot miss a sleeper).
            let mut injector = lock(&self.injector);
            for part in 1..count {
                injector.ready.push_back(Task::Part { node: i, part });
            }
            for _ in 1..count {
                self.work_cv.notify_one();
            }
        }
        self.run_part(me, i, 0)
    }

    /// Executes one slice of a partitioned node; the worker that finishes
    /// the last slice assembles the outputs and completes the node.
    fn run_part(&self, me: usize, node_idx: usize, part: usize) -> Option<Task> {
        if self.shutdown.load(Ordering::Acquire) {
            return None;
        }
        if self.pos[node_idx] > self.min_fail.load(Ordering::Acquire) {
            // The node can no longer merge (an earlier failure wins), so
            // drop the slice: `remaining` never reaches zero and the node
            // simply never completes — the merge cursor stops first.
            return None;
        }
        let state = self.parts[node_idx]
            .get()
            .expect("slices are enqueued only after the partition state is set");
        let id = NodeId(node_idx as u32);
        let node = self.workflow.node(id);
        let (start, end) = state.ranges[part];
        let outcome = (|| {
            let parents = self.parent_outputs(id)?;
            let started = Instant::now();
            // Same panic conversion — and message — as `run_node`, so a
            // row's panic reads identically whether its node split or not.
            let output = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                crate::exec::execute_slice(&node.kind, &node.name, &parents, start, end)
            }))
            .unwrap_or_else(|payload| {
                Err(HelixError::Exec(format!(
                    "node `{}` panicked: {}",
                    node.name,
                    panic_message(&payload)
                )))
            })?;
            Ok((output, started.elapsed().as_secs_f64()))
        })();
        *lock(&state.outs[part]) = Some(outcome);
        if state.remaining.fetch_sub(1, Ordering::AcqRel) != 1 {
            return None;
        }
        // Last slice home: assemble in index order. The first error by
        // slice index holds the globally first failing row, matching the
        // error a whole-node run reports; a node's cost is the *sum* of
        // its slice times (the work done, not the wall time).
        let mut outputs = Vec::with_capacity(state.outs.len());
        let mut total_secs = 0.0;
        let mut first_err: Option<HelixError> = None;
        for cell in &state.outs {
            match lock(cell).take() {
                Some(Ok((output, secs))) => {
                    outputs.push(output);
                    total_secs += secs;
                }
                Some(Err(err)) => {
                    first_err = Some(err);
                    break;
                }
                None => {
                    debug_assert!(false, "slice finished without recording an outcome");
                    first_err = Some(HelixError::Exec(format!(
                        "node `{}`: partition outcome missing (scheduler bug)",
                        node.name
                    )));
                    break;
                }
            }
        }
        let continuation = match first_err {
            Some(err) => {
                self.record_failure(self.pos[node_idx], err);
                None
            }
            None => match crate::exec::concat_slices(outputs) {
                Ok(output) => self.finish_ok(
                    me,
                    node_idx,
                    RawResult {
                        output,
                        executed: ExecutedNode {
                            secs: total_secs,
                            loaded_bytes: None,
                            chunks_loaded: 0,
                        },
                    },
                ),
                Err(err) => {
                    self.record_failure(self.pos[node_idx], err);
                    None
                }
            },
        };
        self.wake_merger(node_idx);
        continuation
    }

    /// Publishes node `i`'s result and readies its children: the first
    /// becomes the worker's continuation, the rest go to its local deque.
    fn finish_ok(&self, me: usize, i: usize, raw: RawResult) -> Option<Task> {
        let set = self.results[i].set(raw);
        debug_assert!(set.is_ok(), "node executed twice");
        let mut next = None;
        let mut pushed = 0usize;
        {
            let mut local = lock(&self.locals[me]);
            for &child in &self.children[i] {
                if self.deps[child].fetch_sub(1, Ordering::AcqRel) == 1 {
                    if next.is_none() {
                        // Run the first readied child ourselves.
                        next = Some(Task::Node(child));
                    } else {
                        local.push_back(Task::Node(child));
                        pushed += 1;
                    }
                }
            }
        }
        if pushed > 0 {
            // Notify under the injector lock: a worker that scanned every
            // queue empty holds it until its wait, so the wakeup cannot
            // slip past (see `next_task`). One wakeup per item avoids a
            // thundering herd.
            let _guard = lock(&self.injector);
            for _ in 0..pushed {
                self.work_cv.notify_one();
            }
        }
        next
    }

    /// Wakes the merge cursor if node `i`'s completion can unblock it —
    /// i.e. it is at (or, for failures, before) the published stall
    /// position. The merger re-checks after publishing, so a stale read
    /// here at worst delays it one timed-wait tick.
    fn wake_merger(&self, i: usize) {
        if self.pos[i] <= self.waiting_pos.load(Ordering::SeqCst) {
            let mut progress = lock(&self.progress);
            *progress += 1;
            self.progress_cv.notify_one();
        }
    }

    fn worker(&self, me: usize) {
        while let Some(mut t) = self.next_task(me) {
            while let Some(next) = self.run_task(me, t) {
                t = next;
            }
        }
    }

    /// Records a failure if it is the plan-order-earliest seen so far.
    /// Execution continues for earlier nodes only (see module docs).
    fn record_failure(&self, pos: usize, err: HelixError) {
        let mut failure = lock(&self.failure);
        if failure.as_ref().is_none_or(|(p, _)| pos < *p) {
            *failure = Some((pos, err));
        }
        self.min_fail.fetch_min(pos, Ordering::AcqRel);
    }

    /// Pops a ready node for the helping merge thread (its own deque,
    /// the injector, then a steal) without ever sleeping.
    fn try_pop(&self, me: usize) -> Option<Task> {
        if let Some(t) = lock(&self.locals[me]).pop_back() {
            return Some(t);
        }
        if let Some(t) = self.pop_injector(&mut lock(&self.injector)) {
            return Some(t);
        }
        self.steal(me)
    }

    /// Drives the plan-order merge cursor on the calling thread while
    /// workers execute; whenever the cursor is stalled the caller *helps*
    /// by executing ready nodes itself (slot `me`), so merging costs no
    /// dedicated thread. Returns when every node has merged, when the
    /// cursor reaches a node that failed (all earlier nodes having
    /// merged, making that failure final), or when `merge` itself errors.
    fn merge_and_help<M>(&self, me: usize, merge: &mut M) -> Result<()>
    where
        M: FnMut(NodeId, &ExecutedNode, &NodeOutput) -> Result<()>,
    {
        let mut cursor = 0usize;
        let mut seen = 0u64;
        // A continuation readied by the caller's last helped task; merging
        // still takes priority over running it.
        let mut pending: Option<Task> = None;
        loop {
            self.waiting_pos.store(usize::MAX, Ordering::SeqCst);
            while cursor < self.plan.order.len() {
                let id = self.plan.order[cursor];
                let i = id.index();
                if self.plan.states[i] == NodeState::Prune {
                    cursor += 1;
                    continue;
                }
                match self.results[i].get() {
                    Some(raw) => {
                        merge(id, &raw.executed, &raw.output)?;
                        cursor += 1;
                    }
                    None => break,
                }
            }
            if cursor >= self.plan.order.len() {
                return Ok(());
            }
            {
                let mut failure = lock(&self.failure);
                if let Some((pos, _)) = failure.as_ref() {
                    // The cursor merged everything before `pos`, so no
                    // plan-order-earlier failure can still happen: this
                    // error is final and deterministic.
                    if *pos == cursor {
                        let (_, err) = failure.take().expect("failure checked above");
                        return Err(err);
                    }
                }
            }
            // Stalled: execute a ready task instead of sleeping.
            if let Some(t) = pending.take().or_else(|| self.try_pop(me)) {
                pending = self.run_task(me, t);
                continue;
            }
            // Nothing to help with. Publish the stall position, then
            // re-check it: a worker that completed this node just before
            // the publish skipped the wakeup, so the decision to sleep
            // must come after.
            self.waiting_pos.store(cursor, Ordering::SeqCst);
            if self.results[self.plan.order[cursor].index()]
                .get()
                .is_some()
                || lock(&self.failure)
                    .as_ref()
                    .is_some_and(|(pos, _)| *pos == cursor)
            {
                continue;
            }
            let progress = lock(&self.progress);
            if *progress == seen {
                // Timed wait as a belt-and-braces backstop: a missed
                // wakeup costs one tick, never a hang.
                let (progress, _timeout) = self
                    .progress_cv
                    .wait_timeout(progress, std::time::Duration::from_millis(2))
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                seen = *progress;
            } else {
                seen = *progress;
            }
        }
    }
}

// UDF panics are converted to errors inside [`run_node`], so the
// crate-wide poison-ignoring `lock` is safe here too: a panicking worker
// must not wedge its siblings.
use crate::lock;

/// Helpers bump this counter as their very last act (after dropping
/// their executor handle); the caller waits for it to reach the number
/// of helpers it actually started before reclaiming the executor.
#[derive(Default)]
struct DoneSignal {
    count: Mutex<usize>,
    cv: Condvar,
}

impl DoneSignal {
    fn signal(&self) {
        *lock(&self.count) += 1;
        self.cv.notify_all();
    }

    fn wait_for(&self, target: usize) {
        let mut count = lock(&self.count);
        while *count < target {
            count = self
                .cv
                .wait(count)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }
}

/// The barrier-free executor: persistent-pool workers race through the
/// dependency DAG while the calling thread merges in plan order.
fn execute_ready_queue<M>(
    workflow: &Workflow,
    plan: &CompiledPlan,
    store: &IntermediateStore,
    opts: &ExecOpts,
    merge: &mut M,
) -> Result<ExecutionResult>
where
    M: FnMut(NodeId, &ExecutedNode, &NodeOutput) -> Result<()>,
{
    let n = workflow.len();
    let executable = plan
        .states
        .iter()
        .filter(|&&s| s != NodeState::Prune)
        .count();
    if executable == 0 {
        return Ok(ExecutionResult {
            outputs: (0..n).map(|_| None).collect(),
            waves: Vec::new(),
        });
    }
    // The calling thread is a full participant (it merges *and* helps
    // execute), so it takes one of the `parallelism` slots. Unlike
    // earlier versions, `executable` does not cap the slot count: a plan
    // of few wide nodes still fans out via partitions.
    let slots = opts
        .parallelism
        .clamp(2, executable.saturating_mul(MAX_PARTITIONS).max(2));
    let exec = Arc::new(ReadyExecutor::new(
        workflow,
        plan,
        store,
        slots,
        opts.partition_rows,
        opts.node_partition_rows.clone(),
    ));

    /// Signals shutdown on drop, so a panic unwinding out of the merge
    /// callback (or anywhere in the merge loop) still wakes sleeping
    /// workers — otherwise they would keep waiting on a run that no
    /// thread is merging, pinning their pool threads forever.
    struct ShutdownOnDrop<'a>(&'a ReadyExecutor);
    impl Drop for ShutdownOnDrop<'_> {
        fn drop(&mut self) {
            self.0.shutdown.store(true, Ordering::Release);
            let _guard = lock(&self.0.injector);
            self.0.work_cv.notify_all();
        }
    }

    let pool = opts
        .pool
        .clone()
        .unwrap_or_else(|| Arc::clone(global_pool()));
    let done = Arc::new(DoneSignal::default());
    let mut started = 0usize;
    for w in 0..slots - 1 {
        let exec = Arc::clone(&exec);
        let done = Arc::clone(&done);
        let job: Job = Box::new(move || {
            exec.worker(w);
            // Drop our executor handle *before* signalling, so the
            // caller's `Arc::try_unwrap` succeeds once the count is in.
            drop(exec);
            done.signal();
        });
        if pool.try_spawn(job) {
            started += 1;
        } else {
            // Pool saturated: run with fewer helpers rather than queue
            // behind other runs — the caller executes either way.
            break;
        }
    }

    let stop = ShutdownOnDrop(&exec);
    let outcome = exec.merge_and_help(slots - 1, merge);
    drop(stop);
    done.wait_for(started);
    let mut exec = exec;
    let exec = loop {
        match Arc::try_unwrap(exec) {
            Ok(exec) => break exec,
            Err(shared) => {
                // A helper has bumped the counter but its `drop(exec)`
                // write is still propagating; spin briefly.
                exec = shared;
                std::thread::yield_now();
            }
        }
    };
    outcome?;

    let mut outputs: Vec<Option<NodeOutput>> = (0..n).map(|_| None).collect();
    let mut secs: Vec<Option<f64>> = vec![None; n];
    for (i, cell) in exec.results.into_iter().enumerate() {
        if let Some(raw) = cell.into_inner() {
            secs[i] = Some(raw.executed.secs);
            outputs[i] = Some(raw.output);
        }
    }
    let waves = derive_waves(workflow, &plan.states, &secs, false);
    Ok(ExecutionResult { outputs, waves })
}

// ---------------------------------------------------------------------------
// Wave-barrier baseline
// ---------------------------------------------------------------------------

/// The historical barrier executor, kept as the benchmark baseline: waves
/// execute level-by-level with a join between levels, and the merge
/// cursor drains between waves. Failure paths still merge (and record
/// timings for) every completed node preceding the plan-order-earliest
/// failure of the failing wave.
fn execute_wave_barrier<M>(
    workflow: &Workflow,
    plan: &CompiledPlan,
    store: &IntermediateStore,
    parallelism: usize,
    merge: &mut M,
) -> Result<ExecutionResult>
where
    M: FnMut(NodeId, &ExecutedNode, &NodeOutput) -> Result<()>,
{
    let waves = crate::recompute::build_waves(workflow, &plan.order, &plan.states);
    let n = workflow.len();
    let mut outputs: Vec<Option<NodeOutput>> = (0..n).map(|_| None).collect();
    let mut pending: Vec<Option<RawResult>> = (0..n).map(|_| None).collect();
    let mut secs: Vec<Option<f64>> = vec![None; n];
    let mut cursor = 0usize;

    for wave in &waves {
        let results = run_wave(workflow, plan, store, &outputs, &pending, wave, parallelism);
        // Surface the plan-order-earliest failure so error behavior does
        // not depend on thread interleaving.
        let mut failure: Option<(usize, HelixError)> = None;
        for (i, result) in results {
            match result {
                Ok(raw) => {
                    secs[i] = Some(raw.executed.secs);
                    pending[i] = Some(raw);
                }
                Err(err) => {
                    let pos = plan_position(plan, i);
                    if failure.as_ref().is_none_or(|(p, _)| pos < *p) {
                        failure = Some((pos, err));
                    }
                }
            }
        }

        // Drain the merge cursor as far as results allow — on failure,
        // only up to the failing node's plan position, so side effects
        // (materializations, cost observations) match what the
        // sequential path commits before erroring at that same node.
        let limit = failure
            .as_ref()
            .map_or(plan.order.len(), |(pos, _)| (*pos).min(plan.order.len()));
        while cursor < limit {
            let id = plan.order[cursor];
            let i = id.index();
            if plan.states[i] == NodeState::Prune {
                cursor += 1;
                continue;
            }
            let Some(raw) = pending[i].take() else { break };
            merge(id, &raw.executed, &raw.output)?;
            outputs[i] = Some(raw.output);
            cursor += 1;
        }
        if let Some((_, err)) = failure {
            return Err(err);
        }
    }
    debug_assert_eq!(cursor, plan.order.len(), "merge cursor left nodes behind");

    let waves = derive_waves(workflow, &plan.states, &secs, false);
    Ok(ExecutionResult { outputs, waves })
}

/// Executes one wave's nodes on up to `parallelism` scoped threads,
/// returning `(node_index, result)` pairs in unspecified order.
fn run_wave(
    workflow: &Workflow,
    plan: &CompiledPlan,
    store: &IntermediateStore,
    outputs: &[Option<NodeOutput>],
    pending: &[Option<RawResult>],
    wave: &[NodeId],
    parallelism: usize,
) -> Vec<(usize, Result<RawResult>)> {
    // Parent results live in `outputs` once merged, or in `pending` when
    // the merge cursor is stalled behind an unrelated slower node.
    let parent_output = |p: NodeId| -> Option<&NodeOutput> {
        outputs[p.index()]
            .as_ref()
            .or_else(|| pending[p.index()].as_ref().map(|raw| &raw.output))
    };

    let workers = parallelism.min(wave.len()).max(1);
    if workers <= 1 {
        return wave
            .iter()
            .map(|&id| {
                (
                    id.index(),
                    run_node(workflow, plan, store, id, parent_output),
                )
            })
            .collect();
    }

    // Round-robin assignment keeps neighbouring (often similar-cost)
    // nodes on different workers.
    let shares: Vec<Vec<NodeId>> = (0..workers)
        .map(|w| wave.iter().skip(w).step_by(workers).copied().collect())
        .collect();
    let mut results: Vec<(usize, Result<RawResult>)> = Vec::with_capacity(wave.len());
    let joined = crossbeam::scope(|scope| {
        let handles: Vec<_> = shares
            .iter()
            .map(|share| {
                let parent_output = &parent_output;
                scope.spawn(move |_| {
                    share
                        .iter()
                        .map(|&id| {
                            (
                                id.index(),
                                run_node(workflow, plan, store, id, parent_output),
                            )
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        let mut collected = Vec::with_capacity(wave.len());
        for handle in handles {
            match handle.join() {
                Ok(share_results) => collected.extend(share_results),
                Err(payload) => collected.push((
                    usize::MAX,
                    Err(HelixError::Exec(format!(
                        "scheduler worker panicked: {}",
                        panic_message(&payload)
                    ))),
                )),
            }
        }
        collected
    });
    match joined {
        Ok(collected) => results.extend(collected),
        Err(payload) => results.push((
            usize::MAX,
            Err(HelixError::Exec(format!(
                "scheduler scope panicked: {}",
                panic_message(&payload)
            ))),
        )),
    }
    results
}

/// Executes a single node (load or compute), timing it. A panicking
/// operator is converted to [`HelixError::Exec`] *here* — not at thread
/// joins — so a UDF panic produces the same error whether the node ran
/// inline or on any worker.
fn run_node<'a>(
    workflow: &Workflow,
    plan: &CompiledPlan,
    store: &IntermediateStore,
    id: NodeId,
    parent_output: impl Fn(NodeId) -> Option<&'a NodeOutput>,
) -> Result<RawResult> {
    let unwound = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        run_node_inner(workflow, plan, store, id, parent_output)
    }));
    unwound.unwrap_or_else(|payload| {
        Err(HelixError::Exec(format!(
            "node `{}` panicked: {}",
            workflow.node(id).name,
            panic_message(&payload)
        )))
    })
}

fn run_node_inner<'a>(
    workflow: &Workflow,
    plan: &CompiledPlan,
    store: &IntermediateStore,
    id: NodeId,
    parent_output: impl Fn(NodeId) -> Option<&'a NodeOutput>,
) -> Result<RawResult> {
    let i = id.index();
    match plan.states[i] {
        NodeState::Prune => Err(HelixError::Exec(format!(
            "pruned node `{}` scheduled (plan bug)",
            workflow.node(id).name
        ))),
        NodeState::Load => {
            let (output, bytes, secs) = store.get(plan.signatures[i])?;
            Ok(RawResult {
                output,
                executed: ExecutedNode {
                    secs,
                    loaded_bytes: Some(bytes),
                    chunks_loaded: 0,
                },
            })
        }
        NodeState::Compute => {
            let node = workflow.node(id);
            let mut parent_outputs: Vec<&NodeOutput> = Vec::with_capacity(node.parents.len());
            for parent in &node.parents {
                parent_outputs.push(parent_output(*parent).ok_or_else(|| {
                    HelixError::Exec(format!(
                        "parent `{}` of `{}` unavailable (plan bug)",
                        workflow.node(*parent).name,
                        node.name
                    ))
                })?);
            }
            let started = Instant::now();
            let (output, chunks_loaded) =
                match assemble_from_chunks(workflow, plan, store, i, &parent_outputs)? {
                    Some(assembled) => assembled,
                    None => (
                        crate::exec::execute(&node.kind, &node.name, &parent_outputs)?,
                        0,
                    ),
                };
            Ok(RawResult {
                output,
                executed: ExecutedNode {
                    secs: started.elapsed().as_secs_f64(),
                    loaded_bytes: None,
                    chunks_loaded,
                },
            })
        }
    }
}

/// The incremental-data fast path: when a computing node carries chunk
/// structure ([`CompiledPlan::chunks`]) and some of its partition
/// signatures are materialized, its output is assembled partition by
/// partition — store hits are loaded, misses are computed with
/// [`crate::exec::execute_slice`] over exactly their row range — and
/// concatenated. Because partition signatures are content-derived, the
/// assembled output is byte-identical to a whole-node compute; after a
/// data delta only the partitions of new chunks miss.
///
/// `Ok(None)` means "no usable chunk entries; compute the node whole":
/// zero hits, an unsliceable operator (a source reads files, not row
/// ranges, so it reuses only on a full hit set), or entries that were
/// evicted between probe and read.
fn assemble_from_chunks(
    workflow: &Workflow,
    plan: &CompiledPlan,
    store: &IntermediateStore,
    i: usize,
    parent_outputs: &[&NodeOutput],
) -> Result<Option<(NodeOutput, usize)>> {
    let Some(chunks) = plan.chunks.get(i).and_then(|c| c.as_ref()) else {
        return Ok(None);
    };
    if chunks.ranges.is_empty() {
        return Ok(None);
    }
    let node = workflow.node(NodeId(i as u32));
    let hits: Vec<bool> = chunks
        .psigs
        .iter()
        .map(|&sig| store.lookup(sig).is_some())
        .collect();
    let hit_count = hits.iter().filter(|h| **h).count();
    if hit_count == 0 {
        return Ok(None);
    }
    let sliceable = crate::exec::partitionable_rows(&node.kind, parent_outputs).is_some();
    if !sliceable && hit_count < hits.len() {
        return Ok(None);
    }
    let mut parts = Vec::with_capacity(chunks.ranges.len());
    let mut loaded = 0usize;
    for (k, &(start, end)) in chunks.ranges.iter().enumerate() {
        if hits[k] {
            if let Ok((output, _, _)) = store.get(chunks.psigs[k]) {
                parts.push(output);
                loaded += 1;
                continue;
            }
            if !sliceable {
                return Ok(None);
            }
        }
        parts.push(crate::exec::execute_slice(
            &node.kind,
            &node.name,
            parent_outputs,
            start,
            end,
        )?);
    }
    if loaded == 0 {
        return Ok(None);
    }
    Ok(Some((crate::exec::concat_slices(parts)?, loaded)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compiler::compile;
    use crate::cost::CostModel;
    use crate::ops::{OperatorKind, Udf};
    use crate::recompute::{build_waves, RecomputationPolicy};
    use crate::workflow::NodeRef;
    use helix_dataflow::{DataCollection, DataType, Row, Schema, Value};
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    fn tmp_store(tag: &str) -> IntermediateStore {
        let dir =
            std::env::temp_dir().join(format!("helix-scheduler-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        crate::store::StoreOptions::new(dir)
            .budget_bytes(1 << 24)
            .open()
            .unwrap()
    }

    fn int_rows(values: &[i64]) -> DataCollection {
        let schema = Schema::of(&[("x", DataType::Int)]);
        let rows = values.iter().map(|&v| Row(vec![Value::Int(v)])).collect();
        DataCollection::from_rows_unchecked(schema, rows)
    }

    /// A deterministic UDF: sums all parent cells and appends `salt`.
    fn sum_udf(salt: i64) -> Udf {
        Udf::new(format!("sum:{salt}"), move |inputs| {
            let mut total = salt;
            for dc in inputs {
                for row in dc.rows() {
                    total += row.get(0).as_int().unwrap_or(0);
                }
            }
            Ok(int_rows(&[total]))
        })
    }

    /// Random-ish DAG: node i gets edges from the given pairs.
    fn dag(n: usize, edges: &[(usize, usize)], outputs: &[usize]) -> Workflow {
        let mut w = Workflow::new("sched-test");
        let mut refs: Vec<NodeRef> = Vec::new();
        for i in 0..n {
            let parents: Vec<&NodeRef> = edges
                .iter()
                .filter(|&&(_, dst)| dst == i)
                .map(|&(src, _)| &refs[src])
                .collect();
            let r = w
                .add(
                    format!("n{i}"),
                    OperatorKind::UserDefined(sum_udf(i as i64 + 1)),
                    &parents,
                )
                .unwrap();
            refs.push(r);
        }
        for &o in outputs {
            w.output(&refs[o]);
        }
        w
    }

    fn run(w: &Workflow, parallelism: usize) -> (ExecutionResult, Vec<NodeId>) {
        let store = tmp_store(&format!("run-{parallelism}-{}", w.len()));
        let cm = CostModel::new();
        let plan = compile(w, &store, &cm, RecomputationPolicy::Optimal, None).unwrap();
        let mut merged = Vec::new();
        let result = execute_plan(w, &plan, &store, parallelism, |id, _, _| {
            merged.push(id);
            Ok(())
        })
        .unwrap();
        (result, merged)
    }

    #[test]
    fn parallel_outputs_match_sequential() {
        let w = dag(
            6,
            &[(0, 1), (0, 2), (0, 3), (1, 4), (2, 4), (3, 5), (4, 5)],
            &[5],
        );
        let (seq, seq_merged) = run(&w, 1);
        let (par, par_merged) = run(&w, 4);
        assert_eq!(seq.outputs, par.outputs);
        assert_eq!(seq_merged, par_merged, "merge order must be plan order");
    }

    #[test]
    fn all_strategies_agree_on_outputs_and_merge_order() {
        let w = dag(
            7,
            &[
                (0, 1),
                (0, 2),
                (1, 3),
                (2, 3),
                (2, 4),
                (3, 5),
                (4, 5),
                (0, 6),
            ],
            &[5, 6],
        );
        let store = tmp_store("strategies");
        let cm = CostModel::new();
        let plan = compile(&w, &store, &cm, RecomputationPolicy::Optimal, None).unwrap();
        let mut reference: Option<(Vec<Option<NodeOutput>>, Vec<NodeId>)> = None;
        for strategy in [
            ExecStrategy::Sequential,
            ExecStrategy::WaveBarrier,
            ExecStrategy::ReadyQueue,
        ] {
            let mut merged = Vec::new();
            let result = execute_plan_with(&w, &plan, &store, strategy, 4, |id, _, _| {
                merged.push(id);
                Ok(())
            })
            .unwrap();
            match &reference {
                None => reference = Some((result.outputs, merged)),
                Some((outputs, order)) => {
                    assert_eq!(outputs, &result.outputs, "{strategy:?} outputs");
                    assert_eq!(order, &merged, "{strategy:?} merge order");
                }
            }
        }
    }

    #[test]
    fn merge_order_is_plan_order_even_when_levels_interleave() {
        // 0 -> 1 (output), 0 -> 2 -> 3 (output), with node 2 materialized
        // so it plans as a dependency-free Load. Plan order is [0, 1, 2, 3]
        // but node 2 is ready immediately and node 3 right after it — both
        // can finish before node 1, yet 2 and 3 must still merge in plan
        // position, after 1.
        let w = dag(4, &[(0, 1), (0, 2), (2, 3)], &[1, 3]);
        let store = tmp_store("interleave");
        let mut cm = CostModel::new();
        for node in w.nodes() {
            cm.observe_compute(&node.name, 1.0);
        }
        let sigs = crate::signature::compute_signatures(&w).unwrap();
        // Node 2's recorded output: salt 3 + parent 0's output (salt 1).
        store
            .put(sigs[2], &NodeOutput::Data(int_rows(&[4])))
            .unwrap();
        let plan = compile(&w, &store, &cm, RecomputationPolicy::Optimal, None).unwrap();
        assert_eq!(plan.order, vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)]);
        assert_eq!(plan.states[2], NodeState::Load);
        let waves = build_waves(&w, &plan.order, &plan.states);
        assert_eq!(waves[0], vec![NodeId(0), NodeId(2)]);
        assert_eq!(waves[1], vec![NodeId(1), NodeId(3)]);
        let mut merged = Vec::new();
        let result = execute_plan(&w, &plan, &store, 4, |id, _, _| {
            merged.push(id);
            Ok(())
        })
        .unwrap();
        assert_eq!(merged, plan.order, "merge must follow plan order");
        // Node 3 = salt 4 + loaded parent value 4.
        assert_eq!(result.outputs[3], Some(NodeOutput::Data(int_rows(&[8]))));
    }

    #[test]
    fn worker_errors_surface_deterministically() {
        let mut w = Workflow::new("err");
        let root = w
            .add("root", OperatorKind::UserDefined(sum_udf(0)), &[])
            .unwrap();
        // Two failing siblings: the plan-order-earlier one must win
        // regardless of which thread finishes first.
        for tag in ["fail_a", "fail_b"] {
            let udf = Udf::new(
                format!("boom:{tag}"),
                move |_inputs: &[&DataCollection]| -> crate::Result<DataCollection> {
                    Err(HelixError::Exec(format!("{tag} failed")))
                },
            );
            let r = w
                .add(tag, OperatorKind::UserDefined(udf), &[&root])
                .unwrap();
            w.output(&r);
        }
        let store = tmp_store("err");
        let cm = CostModel::new();
        let plan = compile(&w, &store, &cm, RecomputationPolicy::Optimal, None).unwrap();
        let mut merged_by_mode: Vec<Vec<NodeId>> = Vec::new();
        for parallelism in [1, 4] {
            let mut merged = Vec::new();
            let err = execute_plan(&w, &plan, &store, parallelism, |id, _, _| {
                merged.push(id);
                Ok(())
            })
            .expect_err("failing UDF must propagate");
            assert!(
                err.to_string().contains("fail_a failed"),
                "expected fail_a first at parallelism {parallelism}, got: {err}"
            );
            merged_by_mode.push(merged);
        }
        // Both modes commit the same plan-order prefix before erroring:
        // the successful root, nothing at or after the failing node.
        assert_eq!(merged_by_mode[0], merged_by_mode[1]);
        assert_eq!(merged_by_mode[0], vec![NodeId(0)]);
    }

    #[test]
    fn failure_commits_sequential_prefix_and_records_timings() {
        // root -> ok (pos 1) -> tail (pos 3), root -> boom (pos 2).
        // Plan order is [root, ok, boom, tail]: the sequential loop runs
        // root and ok, fails at boom, and never reaches tail. The ready
        // queue may have tail in flight, but it must commit exactly the
        // same merge prefix — with real timings for the completed nodes —
        // and surface boom's error, at every thread count.
        let mut w = Workflow::new("fail-prefix");
        let root = w
            .add("root", OperatorKind::UserDefined(sum_udf(0)), &[])
            .unwrap();
        let ok = w
            .add("ok", OperatorKind::UserDefined(sum_udf(10)), &[&root])
            .unwrap();
        let boom = Udf::new(
            "boom",
            move |_inputs: &[&DataCollection]| -> crate::Result<DataCollection> {
                Err(HelixError::Exec("boom failed".into()))
            },
        );
        let boom = w
            .add("boom", OperatorKind::UserDefined(boom), &[&root])
            .unwrap();
        let tail = w
            .add("tail", OperatorKind::UserDefined(sum_udf(20)), &[&ok])
            .unwrap();
        w.output(&boom);
        w.output(&tail);
        let store = tmp_store("fail-prefix");
        let cm = CostModel::new();
        let plan = compile(&w, &store, &cm, RecomputationPolicy::Optimal, None).unwrap();
        let mut merged_by_mode: Vec<Vec<(NodeId, f64)>> = Vec::new();
        for parallelism in [1, 2, 8] {
            let mut merged = Vec::new();
            let err = execute_plan(&w, &plan, &store, parallelism, |id, executed, _| {
                merged.push((id, executed.secs));
                Ok(())
            })
            .expect_err("boom must propagate");
            assert!(
                err.to_string().contains("boom failed"),
                "parallelism {parallelism}: {err}"
            );
            assert!(
                merged.iter().all(|&(_, secs)| secs >= 0.0),
                "completed nodes carry timings"
            );
            merged_by_mode.push(merged);
        }
        for merged in &merged_by_mode {
            let ids: Vec<NodeId> = merged.iter().map(|&(id, _)| id).collect();
            assert_eq!(
                ids,
                vec![NodeId(0), NodeId(1)],
                "exactly the sequential pre-failure prefix merges"
            );
        }
    }

    #[test]
    fn worker_panic_becomes_error() {
        let mut w = Workflow::new("panic");
        let root = w
            .add("root", OperatorKind::UserDefined(sum_udf(0)), &[])
            .unwrap();
        // Enough panicking siblings that execution actually fans out.
        for i in 0..4 {
            let udf = Udf::new(
                format!("panic:{i}"),
                move |_inputs: &[&DataCollection]| -> crate::Result<DataCollection> {
                    panic!("kaboom {i}")
                },
            );
            let r = w
                .add(format!("p{i}"), OperatorKind::UserDefined(udf), &[&root])
                .unwrap();
            w.output(&r);
        }
        let store = tmp_store("panic");
        let cm = CostModel::new();
        let plan = compile(&w, &store, &cm, RecomputationPolicy::Optimal, None).unwrap();
        let err = execute_plan(&w, &plan, &store, 4, |_, _, _| Ok(()))
            .expect_err("panicking UDF must become an error");
        assert!(err.to_string().contains("kaboom"), "got: {err}");
    }

    #[test]
    fn singleton_and_sequential_panics_become_errors_too() {
        // A panicking node with no independent siblings (like every
        // learner/evaluate node) must yield the same Err at every thread
        // count — not unwind at parallelism 1 and Err at 4.
        let mut w = Workflow::new("panic-singleton");
        let root = w
            .add("root", OperatorKind::UserDefined(sum_udf(0)), &[])
            .unwrap();
        let udf = Udf::new(
            "panic:solo",
            move |_inputs: &[&DataCollection]| -> crate::Result<DataCollection> {
                panic!("solo kaboom")
            },
        );
        let r = w
            .add("solo", OperatorKind::UserDefined(udf), &[&root])
            .unwrap();
        w.output(&r);
        let store = tmp_store("panic-solo");
        let cm = CostModel::new();
        let plan = compile(&w, &store, &cm, RecomputationPolicy::Optimal, None).unwrap();
        for parallelism in [1, 4] {
            let err = execute_plan(&w, &plan, &store, parallelism, |_, _, _| Ok(()))
                .expect_err("panic must become an error at any thread count");
            assert!(
                err.to_string().contains("solo kaboom"),
                "parallelism {parallelism}: {err}"
            );
        }
    }

    #[test]
    fn parallelism_cap_limits_concurrency() {
        static LIVE: AtomicUsize = AtomicUsize::new(0);
        static PEAK: AtomicUsize = AtomicUsize::new(0);
        LIVE.store(0, Ordering::SeqCst);
        PEAK.store(0, Ordering::SeqCst);
        let mut w = Workflow::new("cap");
        for i in 0..8 {
            let udf = Udf::new(format!("slow:{i}"), move |_inputs: &[&DataCollection]| {
                let live = LIVE.fetch_add(1, Ordering::SeqCst) + 1;
                PEAK.fetch_max(live, Ordering::SeqCst);
                std::thread::sleep(std::time::Duration::from_millis(20));
                LIVE.fetch_sub(1, Ordering::SeqCst);
                Ok(int_rows(&[i]))
            });
            let r = w
                .add(format!("s{i}"), OperatorKind::UserDefined(udf), &[])
                .unwrap();
            w.output(&r);
        }
        let store = tmp_store("cap");
        let cm = CostModel::new();
        let plan = compile(&w, &store, &cm, RecomputationPolicy::Optimal, None).unwrap();
        execute_plan(&w, &plan, &store, 2, |_, _, _| Ok(())).unwrap();
        let peak = PEAK.load(Ordering::SeqCst);
        assert!(peak <= 2, "parallelism 2 must cap live workers, saw {peak}");
        assert!(peak >= 2, "8 ready nodes should actually use both workers");
    }

    #[test]
    fn dependent_starts_without_waiting_for_slow_sibling() {
        // chain: a -> b, plus a slow independent node s. Under the wave
        // barrier, b sat in wave 1 behind the whole of wave 0 = {a, s}, so
        // the makespan was sleep(s) + sleep(b). The ready queue starts b
        // the moment a finishes, overlapping it with s.
        let slow_ms = 60u64;
        let step_ms = 15u64;
        let mut w = Workflow::new("no-barrier");
        let slow = Udf::new("slow", move |_inputs: &[&DataCollection]| {
            std::thread::sleep(std::time::Duration::from_millis(slow_ms));
            Ok(int_rows(&[0]))
        });
        let s = w.add("s", OperatorKind::UserDefined(slow), &[]).unwrap();
        let quick = |tag: i64| {
            Udf::new(
                format!("quick:{tag}"),
                move |_inputs: &[&DataCollection]| {
                    std::thread::sleep(std::time::Duration::from_millis(step_ms));
                    Ok(int_rows(&[tag]))
                },
            )
        };
        let a = w
            .add("a", OperatorKind::UserDefined(quick(1)), &[])
            .unwrap();
        let b = w
            .add("b", OperatorKind::UserDefined(quick(2)), &[&a])
            .unwrap();
        let c = w
            .add("c", OperatorKind::UserDefined(quick(3)), &[&b])
            .unwrap();
        w.output(&s);
        w.output(&c);
        let store = tmp_store("no-barrier");
        let cm = CostModel::new();
        let plan = compile(&w, &store, &cm, RecomputationPolicy::Optimal, None).unwrap();
        let started = Instant::now();
        execute_plan_with(&w, &plan, &store, ExecStrategy::ReadyQueue, 2, |_, _, _| {
            Ok(())
        })
        .unwrap();
        let elapsed = started.elapsed();
        // Barrier executor needs ≥ slow + 2 * step (chain stalls behind
        // the slow wave member twice); the ready queue overlaps the chain
        // with the slow node. Allow generous scheduling slack.
        let barrier_floor = std::time::Duration::from_millis(slow_ms + 2 * step_ms);
        assert!(
            elapsed < barrier_floor,
            "ready queue should overlap the chain with the slow sibling: \
             took {elapsed:?}, wave-barrier floor is {barrier_floor:?}"
        );
    }

    #[test]
    fn loads_are_ready_immediately() {
        // Materialize a mid-chain node, then recompile: the load has no
        // dependencies, executes immediately, and downstream computes
        // stack above it.
        let w = dag(3, &[(0, 1), (1, 2)], &[2]);
        let store = tmp_store("load");
        let mut cm = CostModel::new();
        for node in w.nodes() {
            cm.observe_compute(&node.name, 1.0);
        }
        let sigs = crate::signature::compute_signatures(&w).unwrap();
        store
            .put(sigs[1], &NodeOutput::Data(int_rows(&[42])))
            .unwrap();
        let plan = compile(&w, &store, &cm, RecomputationPolicy::Optimal, None).unwrap();
        assert_eq!(plan.states[1], NodeState::Load);
        let waves = build_waves(&w, &plan.order, &plan.states);
        assert_eq!(waves[0], vec![NodeId(1)]);
        let result = execute_plan(&w, &plan, &store, 4, |_, _, _| Ok(())).unwrap();
        assert_eq!(result.outputs[1], Some(NodeOutput::Data(int_rows(&[42]))));
        assert_eq!(result.waves.len(), 2, "derived wave depth");
    }

    #[test]
    #[should_panic(expected = "merge kaboom")]
    fn merge_panic_unwinds_instead_of_hanging() {
        // A panic in the merge callback must shut the workers down (the
        // ShutdownOnDrop guard) and unwind out of the scoped join — not
        // leave sleeping workers blocking the join forever.
        let w = dag(6, &[(0, 1), (0, 2), (0, 3), (1, 4), (2, 5)], &[4, 5, 3]);
        let store = tmp_store("mergepanic");
        let cm = CostModel::new();
        let plan = compile(&w, &store, &cm, RecomputationPolicy::Optimal, None).unwrap();
        let _ = execute_plan(&w, &plan, &store, 4, |_, _, _| panic!("merge kaboom"));
    }

    #[test]
    fn merge_failure_propagates() {
        let w = dag(2, &[(0, 1)], &[1]);
        let store = tmp_store("mergefail");
        let cm = CostModel::new();
        let plan = compile(&w, &store, &cm, RecomputationPolicy::Optimal, None).unwrap();
        let err = execute_plan(&w, &plan, &store, 4, |_, _, _| {
            Err(HelixError::Exec("merge refused".into()))
        })
        .expect_err("merge error must propagate");
        assert!(err.to_string().contains("merge refused"));
    }

    #[test]
    fn wide_fanout_is_faster_with_threads() {
        // Smoke-level perf sanity (the real comparison lives in
        // benches/scheduler.rs): 6 independent 15 ms nodes at 6 threads
        // should beat 1 thread comfortably.
        if std::thread::available_parallelism().map_or(1, |n| n.get()) < 4 {
            return;
        }
        let build = || {
            let mut w = Workflow::new("fan");
            for i in 0..6 {
                let udf = Udf::new(
                    format!("sleep:{i}"),
                    move |_inputs: &[&DataCollection]| {
                        std::thread::sleep(std::time::Duration::from_millis(15));
                        Ok(int_rows(&[i]))
                    },
                );
                let r = w
                    .add(format!("f{i}"), OperatorKind::UserDefined(udf), &[])
                    .unwrap();
                w.output(&r);
            }
            w
        };
        let w = build();
        let store = tmp_store("fan");
        let cm = CostModel::new();
        let plan = compile(&w, &store, &cm, RecomputationPolicy::Optimal, None).unwrap();
        let t1 = Instant::now();
        execute_plan(&w, &plan, &store, 1, |_, _, _| Ok(())).unwrap();
        let sequential = t1.elapsed();
        let t2 = Instant::now();
        execute_plan(&w, &plan, &store, 6, |_, _, _| Ok(())).unwrap();
        let parallel = t2.elapsed();
        assert!(
            parallel < sequential,
            "6-wide fan-out at 6 threads ({parallel:?}) should beat 1 thread ({sequential:?})"
        );
    }

    #[test]
    fn injector_pops_longest_critical_path_first() {
        // Three shallow singletons (ids 0-2) ahead of a 3-deep chain
        // (ids 3-5) in plan order. All four roots are ready at t=0 with
        // identical per-node cost estimates, so the chain head's
        // downstream tail makes it the highest-priority injector entry:
        // the first pop must take the chain head, not the
        // plan-order-first singleton a FIFO pop would pick. Pop order is
        // asserted directly on the executor (single-threaded, so it is
        // deterministic — a log written from racing workers would not
        // be); the plan is then executed for the completeness check.
        let started: Arc<std::sync::Mutex<Vec<String>>> =
            Arc::new(std::sync::Mutex::new(Vec::new()));
        let mut w = Workflow::new("prio");
        let tracked = |name: &str, log: &Arc<std::sync::Mutex<Vec<String>>>| {
            let log = Arc::clone(log);
            let name = name.to_string();
            Udf::new(format!("track:{name}"), move |_: &[&DataCollection]| {
                log.lock().unwrap().push(name.clone());
                std::thread::sleep(std::time::Duration::from_millis(10));
                Ok(int_rows(&[1]))
            })
        };
        for i in 0..3 {
            let name = format!("s{i}");
            let udf = tracked(&name, &started);
            let r = w.add(&name, OperatorKind::UserDefined(udf), &[]).unwrap();
            w.output(&r);
        }
        let a = w
            .add("a", OperatorKind::UserDefined(tracked("a", &started)), &[])
            .unwrap();
        let b = w
            .add(
                "b",
                OperatorKind::UserDefined(tracked("b", &started)),
                &[&a],
            )
            .unwrap();
        let c = w
            .add(
                "c",
                OperatorKind::UserDefined(tracked("c", &started)),
                &[&b],
            )
            .unwrap();
        w.output(&c);
        let store = tmp_store("prio");
        let cm = CostModel::new();
        let plan = compile(&w, &store, &cm, RecomputationPolicy::Optimal, None).unwrap();

        let exec = ReadyExecutor::new(&w, &plan, &store, 2, usize::MAX, None);
        let mut injector = lock(&exec.injector);
        let popped: Vec<String> = std::iter::from_fn(|| exec.pop_injector(&mut injector))
            .map(|t| w.nodes()[t.node()].name.clone())
            .collect();
        drop(injector);
        assert_eq!(
            popped,
            ["a", "s0", "s1", "s2"],
            "chain head pops first (deepest downstream tail), singletons follow in plan order"
        );

        execute_plan(&w, &plan, &store, 2, |_, _, _| Ok(())).unwrap();
        let log = started.lock().unwrap();
        assert_eq!(log.len(), 6, "every node executed");
    }

    /// Source UDF producing `0..n` ints, and a RowUdf doubling each row —
    /// the partitionable stage the tests below split.
    fn rows_workflow(n: i64) -> Workflow {
        let mut w = Workflow::new("partition");
        let src = Udf::new(format!("iota:{n}"), move |_: &[&DataCollection]| {
            Ok(int_rows(&(0..n).collect::<Vec<_>>()))
        });
        let src = w.add("src", OperatorKind::UserDefined(src), &[]).unwrap();
        let double = Udf::new("double:v1", |inputs: &[&DataCollection]| {
            let rows = inputs[0]
                .rows()
                .iter()
                .map(|r| r.get(0).as_int().unwrap_or(0) * 2)
                .collect::<Vec<_>>();
            Ok(int_rows(&rows))
        });
        let d = w.row_udf("double", &[&src], double).unwrap();
        w.output(&d);
        w
    }

    fn run_opts(w: &Workflow, opts: &ExecOpts, tag: &str) -> (ExecutionResult, Vec<NodeId>) {
        let store = tmp_store(tag);
        let cm = CostModel::new();
        let plan = compile(w, &store, &cm, RecomputationPolicy::Optimal, None).unwrap();
        let mut merged = Vec::new();
        let result = execute_plan_opts(w, &plan, &store, opts, |id, _, _| {
            merged.push(id);
            Ok(())
        })
        .unwrap();
        (result, merged)
    }

    #[test]
    fn partitioned_node_matches_sequential_output() {
        let w = rows_workflow(200);
        let (seq, seq_merged) = run_opts(
            &w,
            &ExecOpts {
                parallelism: 1,
                partition_rows: 8,
                ..ExecOpts::default()
            },
            "part-seq",
        );
        for (parallelism, partition_rows) in [(2, 8), (4, 8), (4, 1), (4, usize::MAX)] {
            let (par, par_merged) = run_opts(
                &w,
                &ExecOpts {
                    parallelism,
                    partition_rows,
                    ..ExecOpts::default()
                },
                &format!("part-{parallelism}-{partition_rows}"),
            );
            assert_eq!(
                seq.outputs, par.outputs,
                "parallelism {parallelism}, partition_rows {partition_rows}"
            );
            assert_eq!(seq_merged, par_merged, "merge order must be plan order");
        }
    }

    #[test]
    fn partition_failure_matches_sequential_error() {
        // The UDF rejects the first row it sees whose value is in the bad
        // set, scanning its slice in order — exactly what a whole-input
        // run does. The sequential loop reports value 10 (the globally
        // first bad row); every partitioned run must report the same,
        // even though the slice holding value 150 may fail first in wall
        // time.
        let mut w = Workflow::new("part-fail");
        let src = Udf::new("iota:200", move |_: &[&DataCollection]| {
            Ok(int_rows(&(0..200).collect::<Vec<_>>()))
        });
        let src = w.add("src", OperatorKind::UserDefined(src), &[]).unwrap();
        let picky = Udf::new("picky:v1", |inputs: &[&DataCollection]| {
            for r in inputs[0].rows() {
                let v = r.get(0).as_int().unwrap_or(0);
                if v == 10 || v == 150 {
                    return Err(HelixError::Exec(format!("bad row {v}")));
                }
            }
            Ok(inputs[0].clone())
        });
        let p = w.row_udf("picky", &[&src], picky).unwrap();
        w.output(&p);
        let store = tmp_store("part-fail");
        let cm = CostModel::new();
        let plan = compile(&w, &store, &cm, RecomputationPolicy::Optimal, None).unwrap();
        let mut messages = Vec::new();
        for (parallelism, partition_rows) in [(1, 8), (4, 8), (4, 1)] {
            let opts = ExecOpts {
                parallelism,
                partition_rows,
                ..ExecOpts::default()
            };
            let err = execute_plan_opts(&w, &plan, &store, &opts, |_, _, _| Ok(()))
                .expect_err("picky must fail");
            messages.push(err.to_string());
        }
        for msg in &messages {
            assert!(
                msg.contains("bad row 10"),
                "expected the globally first bad row, got: {msg}"
            );
        }
    }

    #[test]
    fn partitioned_panic_becomes_error() {
        let mut w = Workflow::new("part-panic");
        let src = Udf::new("iota:100", move |_: &[&DataCollection]| {
            Ok(int_rows(&(0..100).collect::<Vec<_>>()))
        });
        let src = w.add("src", OperatorKind::UserDefined(src), &[]).unwrap();
        let bomb = Udf::new("bomb:v1", |inputs: &[&DataCollection]| {
            if inputs[0].rows().iter().any(|r| r.get(0) == &Value::Int(42)) {
                panic!("slice kaboom");
            }
            Ok(inputs[0].clone())
        });
        let b = w.row_udf("bomb", &[&src], bomb).unwrap();
        w.output(&b);
        let store = tmp_store("part-panic");
        let cm = CostModel::new();
        let plan = compile(&w, &store, &cm, RecomputationPolicy::Optimal, None).unwrap();
        let opts = ExecOpts {
            parallelism: 4,
            partition_rows: 8,
            ..ExecOpts::default()
        };
        let err = execute_plan_opts(&w, &plan, &store, &opts, |_, _, _| Ok(()))
            .expect_err("panicking slice must surface as an error");
        let msg = err.to_string();
        assert!(
            msg.contains("node `bomb` panicked") && msg.contains("slice kaboom"),
            "got: {msg}"
        );
    }

    #[test]
    fn explicit_pool_is_reused_across_runs() {
        let pool = Arc::new(crate::pool::WorkerPool::with_max_threads(2));
        let w = rows_workflow(200);
        let opts = ExecOpts {
            parallelism: 3,
            partition_rows: 8,
            node_partition_rows: None,
            pool: Some(Arc::clone(&pool)),
        };
        let (first, _) = run_opts(&w, &opts, "pool-reuse-a");
        let (second, _) = run_opts(&w, &opts, "pool-reuse-b");
        assert_eq!(first.outputs, second.outputs);
        assert!(
            pool.threads() <= 2,
            "runs must reuse the capped pool, spawned {}",
            pool.threads()
        );
    }

    #[test]
    fn shared_udf_state_is_threadsafe() {
        // UDFs capturing shared state must see a consistent picture.
        let counter = Arc::new(AtomicUsize::new(0));
        let mut w = Workflow::new("shared");
        for i in 0..8 {
            let counter = Arc::clone(&counter);
            let udf = Udf::new(
                format!("count:{i}"),
                move |_inputs: &[&DataCollection]| {
                    counter.fetch_add(1, Ordering::SeqCst);
                    Ok(int_rows(&[i]))
                },
            );
            let r = w
                .add(format!("c{i}"), OperatorKind::UserDefined(udf), &[])
                .unwrap();
            w.output(&r);
        }
        let store = tmp_store("shared");
        let cm = CostModel::new();
        let plan = compile(&w, &store, &cm, RecomputationPolicy::Optimal, None).unwrap();
        execute_plan(&w, &plan, &store, 4, |_, _, _| Ok(())).unwrap();
        assert_eq!(counter.load(Ordering::SeqCst), 8);
    }
}
