//! Program slicing: prune operators that do not contribute to outputs.
//!
//! The paper's slicer uses "fine-grained data provenance to automatically
//! eliminate computation for features that do not impact the model, without
//! any code change by the user" (§2.2). In this DAG encoding, provenance is
//! explicit: an extractor feeds the model iff it is wired into an
//! `AssembleFeatures` node (the `has_extractors` list). Extractors dropped
//! from that list — like `race`/`cl` in Fig. 1b, grayed out — simply stop
//! being ancestors of any output and are sliced away here.

use crate::data::SourceManifest;
use crate::ops::OperatorKind;
use crate::signature::Signature;
use crate::workflow::{NodeId, Workflow};
use crate::Result;
use helix_dataflow::fx::{FxHashMap, FxHasher};
use std::hash::Hasher;

/// Result of slicing: which nodes survive.
#[derive(Debug, Clone)]
pub struct Slice {
    /// `true` for nodes that (transitively) feed an output.
    pub active: Vec<bool>,
}

impl Slice {
    /// Ids of sliced-away (inactive) nodes.
    pub fn pruned(&self) -> Vec<NodeId> {
        self.active
            .iter()
            .enumerate()
            .filter(|(_, a)| !**a)
            .map(|(i, _)| NodeId(i as u32))
            .collect()
    }

    /// Number of active nodes.
    pub fn active_count(&self) -> usize {
        self.active.iter().filter(|a| **a).count()
    }
}

/// Computes the backward slice from the workflow outputs.
///
/// # Errors
/// [`crate::HelixError::Compile`] if the workflow has no outputs — an
/// entirely dead workflow is almost certainly a bug in user code, and the
/// paper's engine likewise refuses to run output-less programs.
pub fn slice(workflow: &Workflow) -> Result<Slice> {
    if workflow.outputs().is_empty() {
        return Err(crate::HelixError::Compile(
            "workflow has no outputs; nothing to execute (did you forget is_output()?)".into(),
        ));
    }
    let mut active = vec![false; workflow.len()];
    let mut stack: Vec<NodeId> = workflow.outputs().to_vec();
    while let Some(id) = stack.pop() {
        if active[id.index()] {
            continue;
        }
        active[id.index()] = true;
        stack.extend(workflow.node(id).parents.iter().copied());
    }
    Ok(Slice { active })
}

/// Per-partition signatures for one node: the dataset's chunk structure
/// projected through the row-aligned region of the DAG (see
/// [`chunk_plan`]).
#[derive(Debug, Clone, PartialEq)]
pub struct NodeChunks {
    /// Half-open `[start, end)` row ranges of the node's output, one per
    /// data chunk, covering all rows in order.
    pub ranges: Vec<(usize, usize)>,
    /// Partition signature per range — a content-derived store key, so an
    /// unchanged chunk's partitions stay loadable after a data delta.
    pub psigs: Vec<Signature>,
}

/// Whether an operator maps input rows to output rows 1:1, so its output
/// can be partitioned by the *source's* chunk ranges. `AssembleFeatures`
/// is slice-pure but drops label-less rows, which breaks the row
/// alignment; everything from it onward is partitioned only by the
/// scheduler's dynamic ranges, never by data chunks.
fn row_aligned(kind: &OperatorKind) -> bool {
    matches!(
        kind,
        OperatorKind::CsvScan { .. }
            | OperatorKind::FieldExtractor { .. }
            | OperatorKind::Interaction
    )
}

/// Computes per-node **partition signatures**: the per-partition analogue
/// of the Merkle node signature, over the region of the DAG where output
/// rows stay aligned with source rows.
///
/// A chunkable source's partitions are its data chunks
/// ([`crate::data::SourceManifest`], keyed by node index in `manifests`);
/// a downstream node inherits the structure iff its operator is 1:1
/// row-aligned and *every* parent carries the same ranges. Each partition
/// signature hashes the operator's identity with the parents' partition
/// signatures — for a source, with the chunk's content hash — so it is
/// independent of file paths and of everything outside its own row range.
/// After a data delta, partitions over unchanged chunks keep their store
/// keys and are served from the store while only new-chunk partitions
/// recompute.
pub fn chunk_plan(
    workflow: &Workflow,
    manifests: &FxHashMap<usize, SourceManifest>,
) -> Result<Vec<Option<NodeChunks>>> {
    let order = workflow.topo_order()?;
    let mut chunks: Vec<Option<NodeChunks>> = vec![None; workflow.len()];
    for id in order {
        let node = workflow.node(id);
        let computed = if let Some(manifest) = manifests.get(&id.index()) {
            if manifest.chunks.is_empty() {
                None
            } else {
                let mut ranges = Vec::with_capacity(manifest.chunks.len());
                let mut psigs = Vec::with_capacity(manifest.chunks.len());
                let mut start = 0usize;
                for chunk in &manifest.chunks {
                    ranges.push((start, start + chunk.rows));
                    start += chunk.rows;
                    let mut hasher = FxHasher::default();
                    hasher.write(node.kind.tag().as_bytes());
                    hasher.write_u8(0xfe);
                    hasher.write(b"chunk");
                    hasher.write_u64(chunk.hash);
                    hasher.write_u8(0xff);
                    psigs.push(Signature(hasher.finish()));
                }
                Some(NodeChunks { ranges, psigs })
            }
        } else if row_aligned(&node.kind) && !node.parents.is_empty() {
            let parents: Option<Vec<&NodeChunks>> = node
                .parents
                .iter()
                .map(|p| chunks[p.index()].as_ref())
                .collect();
            parents
                .filter(|ps| ps.iter().all(|p| p.ranges == ps[0].ranges))
                .map(|ps| {
                    let ranges = ps[0].ranges.clone();
                    let psigs = (0..ranges.len())
                        .map(|k| {
                            let mut hasher = FxHasher::default();
                            hasher.write(node.kind.tag().as_bytes());
                            hasher.write_u8(0xfe);
                            hasher.write(node.kind.params_string().as_bytes());
                            hasher.write_u8(0xff);
                            for parent in &ps {
                                hasher.write_u64(parent.psigs[k].0);
                            }
                            Signature(hasher.finish())
                        })
                        .collect();
                    NodeChunks { ranges, psigs }
                })
        } else {
            None
        };
        chunks[id.index()] = computed;
    }
    Ok(chunks)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{ExtractorKind, LearnerSpec};
    use crate::workflow::Workflow;
    use helix_dataflow::DataType;

    /// Census-like workflow where `race` and `cl` are declared but not
    /// wired into `income` — the exact Fig. 1b situation.
    fn census_like() -> Workflow {
        let mut w = Workflow::new("census");
        let src = w.csv_source("data", "train.csv", None::<&str>).unwrap();
        let rows = w
            .csv_scanner(
                "rows",
                &src,
                &[
                    ("age", DataType::Int),
                    ("race", DataType::Str),
                    ("target", DataType::Int),
                ],
            )
            .unwrap();
        let age = w
            .field_extractor("age", &rows, "age", ExtractorKind::Numeric)
            .unwrap();
        let _race = w
            .field_extractor("race", &rows, "race", ExtractorKind::Categorical)
            .unwrap();
        let _cl = w
            .field_extractor("cl", &rows, "age", ExtractorKind::Numeric)
            .unwrap();
        let target = w
            .field_extractor("target", &rows, "target", ExtractorKind::Numeric)
            .unwrap();
        let income = w.assemble("income", &rows, &[&age], &target).unwrap();
        let preds = w
            .learner("predictions", &income, LearnerSpec::default())
            .unwrap();
        w.output(&preds);
        w
    }

    #[test]
    fn unwired_extractors_are_pruned() {
        let w = census_like();
        let s = slice(&w).unwrap();
        let active = |name: &str| s.active[w.by_name(name).unwrap().index()];
        assert!(active("rows"));
        assert!(active("age"));
        assert!(active("income"));
        assert!(active("predictions"));
        assert!(
            !active("race"),
            "race is not in has_extractors; must be sliced"
        );
        assert!(!active("cl"));
        assert_eq!(s.pruned().len(), 2);
    }

    #[test]
    fn no_outputs_is_an_error() {
        let mut w = Workflow::new("t");
        w.csv_source("a", "x.csv", None::<&str>).unwrap();
        assert!(slice(&w).is_err());
    }

    #[test]
    fn rewiring_extractor_back_in_reactivates_it() {
        let mut w = census_like();
        let rows = w.node_ref("rows").unwrap();
        let age = w.node_ref("age").unwrap();
        let race = w.node_ref("race").unwrap();
        let target = w.node_ref("target").unwrap();
        w.rewire("income", &[&rows, &age, &race, &target]).unwrap();
        let s = slice(&w).unwrap();
        assert!(s.active[w.by_name("race").unwrap().index()]);
    }

    #[test]
    fn chunk_structure_stops_at_assemble() {
        let dir = std::env::temp_dir().join(format!("helix-slice-chunks-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let train = dir.join("train.csv");
        let mut lines = String::new();
        for i in 0..10 {
            lines.push_str(&format!("{i},1\n"));
        }
        std::fs::write(&train, &lines).unwrap();

        let mut w = Workflow::new("t");
        let src = w.csv_source("data", &train, None::<&str>).unwrap();
        let rows = w
            .csv_scanner("rows", &src, &[("x", DataType::Int), ("y", DataType::Int)])
            .unwrap();
        let x = w
            .field_extractor("x", &rows, "x", ExtractorKind::Numeric)
            .unwrap();
        let y = w
            .field_extractor("y", &rows, "y", ExtractorKind::Numeric)
            .unwrap();
        let income = w.assemble("income", &rows, &[&x], &y).unwrap();
        w.output(&income);

        let manifests = crate::data::workflow_manifests(&w, 4);
        let plan = chunk_plan(&w, &manifests).unwrap();
        let at = |name: &str| plan[w.by_name(name).unwrap().index()].as_ref();
        let src_chunks = at("data").expect("source has chunk structure");
        assert_eq!(src_chunks.ranges, vec![(0, 4), (4, 8), (8, 10)]);
        let rows_chunks = at("rows").expect("scan inherits chunk structure");
        assert_eq!(rows_chunks.ranges, src_chunks.ranges);
        assert_ne!(rows_chunks.psigs, src_chunks.psigs);
        assert!(at("x").is_some());
        assert!(at("income").is_none(), "assemble drops rows; not aligned");

        // Appending preserves the psigs of covered chunks.
        crate::data::append_lines(&train, &["10,1".into(), "11,1".into()]).unwrap();
        let manifests2 = crate::data::workflow_manifests(&w, 4);
        let plan2 = chunk_plan(&w, &manifests2).unwrap();
        let rows2 = plan2[w.by_name("rows").unwrap().index()].as_ref().unwrap();
        assert_eq!(rows2.ranges.len(), 3);
        assert_eq!(rows2.psigs[0], rows_chunks.psigs[0]);
        assert_eq!(rows2.psigs[1], rows_chunks.psigs[1]);
        assert_ne!(rows2.psigs[2], rows_chunks.psigs[2]);
    }

    #[test]
    fn all_nodes_active_when_everything_feeds_outputs() {
        let mut w = Workflow::new("t");
        let a = w.csv_source("a", "x.csv", None::<&str>).unwrap();
        let b = w.csv_scanner("b", &a, &[("x", DataType::Int)]).unwrap();
        w.output(&b);
        let s = slice(&w).unwrap();
        assert_eq!(s.active_count(), 2);
        assert!(s.pruned().is_empty());
    }
}
