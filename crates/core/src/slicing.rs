//! Program slicing: prune operators that do not contribute to outputs.
//!
//! The paper's slicer uses "fine-grained data provenance to automatically
//! eliminate computation for features that do not impact the model, without
//! any code change by the user" (§2.2). In this DAG encoding, provenance is
//! explicit: an extractor feeds the model iff it is wired into an
//! `AssembleFeatures` node (the `has_extractors` list). Extractors dropped
//! from that list — like `race`/`cl` in Fig. 1b, grayed out — simply stop
//! being ancestors of any output and are sliced away here.

use crate::workflow::{NodeId, Workflow};
use crate::Result;

/// Result of slicing: which nodes survive.
#[derive(Debug, Clone)]
pub struct Slice {
    /// `true` for nodes that (transitively) feed an output.
    pub active: Vec<bool>,
}

impl Slice {
    /// Ids of sliced-away (inactive) nodes.
    pub fn pruned(&self) -> Vec<NodeId> {
        self.active
            .iter()
            .enumerate()
            .filter(|(_, a)| !**a)
            .map(|(i, _)| NodeId(i as u32))
            .collect()
    }

    /// Number of active nodes.
    pub fn active_count(&self) -> usize {
        self.active.iter().filter(|a| **a).count()
    }
}

/// Computes the backward slice from the workflow outputs.
///
/// # Errors
/// [`crate::HelixError::Compile`] if the workflow has no outputs — an
/// entirely dead workflow is almost certainly a bug in user code, and the
/// paper's engine likewise refuses to run output-less programs.
pub fn slice(workflow: &Workflow) -> Result<Slice> {
    if workflow.outputs().is_empty() {
        return Err(crate::HelixError::Compile(
            "workflow has no outputs; nothing to execute (did you forget is_output()?)".into(),
        ));
    }
    let mut active = vec![false; workflow.len()];
    let mut stack: Vec<NodeId> = workflow.outputs().to_vec();
    while let Some(id) = stack.pop() {
        if active[id.index()] {
            continue;
        }
        active[id.index()] = true;
        stack.extend(workflow.node(id).parents.iter().copied());
    }
    Ok(Slice { active })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{ExtractorKind, LearnerSpec};
    use crate::workflow::Workflow;
    use helix_dataflow::DataType;

    /// Census-like workflow where `race` and `cl` are declared but not
    /// wired into `income` — the exact Fig. 1b situation.
    fn census_like() -> Workflow {
        let mut w = Workflow::new("census");
        let src = w.csv_source("data", "train.csv", None::<&str>).unwrap();
        let rows = w
            .csv_scanner(
                "rows",
                &src,
                &[
                    ("age", DataType::Int),
                    ("race", DataType::Str),
                    ("target", DataType::Int),
                ],
            )
            .unwrap();
        let age = w
            .field_extractor("age", &rows, "age", ExtractorKind::Numeric)
            .unwrap();
        let _race = w
            .field_extractor("race", &rows, "race", ExtractorKind::Categorical)
            .unwrap();
        let _cl = w
            .field_extractor("cl", &rows, "age", ExtractorKind::Numeric)
            .unwrap();
        let target = w
            .field_extractor("target", &rows, "target", ExtractorKind::Numeric)
            .unwrap();
        let income = w.assemble("income", &rows, &[&age], &target).unwrap();
        let preds = w
            .learner("predictions", &income, LearnerSpec::default())
            .unwrap();
        w.output(&preds);
        w
    }

    #[test]
    fn unwired_extractors_are_pruned() {
        let w = census_like();
        let s = slice(&w).unwrap();
        let active = |name: &str| s.active[w.by_name(name).unwrap().index()];
        assert!(active("rows"));
        assert!(active("age"));
        assert!(active("income"));
        assert!(active("predictions"));
        assert!(
            !active("race"),
            "race is not in has_extractors; must be sliced"
        );
        assert!(!active("cl"));
        assert_eq!(s.pruned().len(), 2);
    }

    #[test]
    fn no_outputs_is_an_error() {
        let mut w = Workflow::new("t");
        w.csv_source("a", "x.csv", None::<&str>).unwrap();
        assert!(slice(&w).is_err());
    }

    #[test]
    fn rewiring_extractor_back_in_reactivates_it() {
        let mut w = census_like();
        let rows = w.node_ref("rows").unwrap();
        let age = w.node_ref("age").unwrap();
        let race = w.node_ref("race").unwrap();
        let target = w.node_ref("target").unwrap();
        w.rewire("income", &[&rows, &age, &race, &target]).unwrap();
        let s = slice(&w).unwrap();
        assert!(s.active[w.by_name("race").unwrap().index()]);
    }

    #[test]
    fn all_nodes_active_when_everything_feeds_outputs() {
        let mut w = Workflow::new("t");
        let a = w.csv_source("a", "x.csv", None::<&str>).unwrap();
        let b = w.csv_scanner("b", &a, &[("x", DataType::Int)]).unwrap();
        w.output(&b);
        let s = slice(&w).unwrap();
        assert_eq!(s.active_count(), 2);
        assert!(s.pruned().is_empty());
    }
}
