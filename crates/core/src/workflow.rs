//! The Helix workflow DSL.
//!
//! Mirrors the paper's Scala DSL (Fig. 1a) with a builder API: operators
//! are *declared by name* and *wired* into a DAG of data collections. The
//! Census example reads almost line-for-line like the paper:
//!
//! ```
//! use helix_core::workflow::Workflow;
//! use helix_core::ops::{ExtractorKind, LearnerSpec, EvalSpec};
//! use helix_dataflow::DataType;
//!
//! let mut w = Workflow::new("Census");
//! let data = w.csv_source("data", "train.csv", Some("test.csv")).unwrap();
//! let rows = w
//!     .csv_scanner("rows", &data, &[("age", DataType::Int), ("education", DataType::Str)])
//!     .unwrap();
//! let age = w.field_extractor("age", &rows, "age", ExtractorKind::Numeric).unwrap();
//! let edu = w.field_extractor("edu", &rows, "education", ExtractorKind::Categorical).unwrap();
//! let age_bucket = w.bucketizer("ageBucket", &age, 10).unwrap();
//! let target = w.field_extractor("target", &rows, "age", ExtractorKind::Numeric).unwrap();
//! let income = w.assemble("income", &rows, &[&edu, &age_bucket], &target).unwrap();
//! let predictions = w.learner("predictions", &income, LearnerSpec::default()).unwrap();
//! let checked = w.evaluate("checked", &predictions, EvalSpec::default()).unwrap();
//! w.output(&predictions);
//! w.output(&checked);
//! assert_eq!(w.len(), 10);
//! ```

use crate::ops::{EvalSpec, ExtractorKind, LearnerSpec, OperatorKind, Udf};
use crate::{HelixError, Result};
use helix_dataflow::fx::FxHashMap;
use helix_dataflow::DataType;
use std::path::PathBuf;

/// Index of a node within a workflow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The index as `usize`.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A handle returned by DSL builder methods, used to wire children.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeRef(pub NodeId);

/// One declared operator and its wiring.
#[derive(Debug, Clone)]
pub struct Node {
    /// Unique name within the workflow (the DSL declaration name).
    pub name: String,
    /// The operator.
    pub kind: OperatorKind,
    /// Parent nodes, in wiring order.
    pub parents: Vec<NodeId>,
}

/// A declarative ML workflow: a named DAG of operators.
#[derive(Debug, Clone, Default)]
pub struct Workflow {
    name: String,
    nodes: Vec<Node>,
    by_name: FxHashMap<String, NodeId>,
    outputs: Vec<NodeId>,
}

impl Workflow {
    /// Creates an empty workflow.
    pub fn new(name: impl Into<String>) -> Self {
        Workflow {
            name: name.into(),
            ..Default::default()
        }
    }

    /// The workflow name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of declared nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether no nodes are declared.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// All nodes, indexable by [`NodeId::index`].
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// The node behind an id.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// Ids flagged as workflow outputs (`is_output()` in the paper DSL).
    pub fn outputs(&self) -> &[NodeId] {
        &self.outputs
    }

    /// Looks a node up by declaration name.
    pub fn by_name(&self, name: &str) -> Option<NodeId> {
        self.by_name.get(name).copied()
    }

    // -- generic insertion ---------------------------------------------------

    /// Adds an operator with explicit parents. The DSL helpers below are
    /// sugar over this; it is public so UDF-heavy workflows (like the IE
    /// application) can wire arbitrary shapes.
    pub fn add(
        &mut self,
        name: impl Into<String>,
        kind: OperatorKind,
        parents: &[&NodeRef],
    ) -> Result<NodeRef> {
        let name = name.into();
        if name.is_empty() {
            return Err(HelixError::Workflow("node name must be non-empty".into()));
        }
        if self.by_name.contains_key(&name) {
            return Err(HelixError::Workflow(format!(
                "duplicate node name `{name}`"
            )));
        }
        let parent_ids: Vec<NodeId> = parents.iter().map(|r| r.0).collect();
        for pid in &parent_ids {
            if pid.index() >= self.nodes.len() {
                return Err(HelixError::Workflow(format!(
                    "parent id {pid:?} of `{name}` does not exist"
                )));
            }
        }
        let id = NodeId(self.nodes.len() as u32);
        self.by_name.insert(name.clone(), id);
        self.nodes.push(Node {
            name,
            kind,
            parents: parent_ids,
        });
        Ok(NodeRef(id))
    }

    /// Marks a node as a workflow output.
    pub fn output(&mut self, node: &NodeRef) {
        if !self.outputs.contains(&node.0) {
            self.outputs.push(node.0);
        }
    }

    // -- DSL sugar (paper Fig. 1a vocabulary) --------------------------------

    /// `data refers_to new FileSource(train, test)`.
    pub fn csv_source(
        &mut self,
        name: &str,
        train_path: impl Into<PathBuf>,
        test_path: Option<impl Into<PathBuf>>,
    ) -> Result<NodeRef> {
        self.add(
            name,
            OperatorKind::CsvSource {
                train_path: train_path.into(),
                test_path: test_path.map(Into::into),
            },
            &[],
        )
    }

    /// A one-document-per-line corpus source for unstructured-text tasks.
    pub fn text_source(
        &mut self,
        name: &str,
        path: impl Into<PathBuf>,
        test_fraction: f64,
    ) -> Result<NodeRef> {
        self.add(
            name,
            OperatorKind::TextSource {
                path: path.into(),
                test_fraction,
            },
            &[],
        )
    }

    /// `data is_read_into rows using CSVScanner(...)`.
    pub fn csv_scanner(
        &mut self,
        name: &str,
        source: &NodeRef,
        fields: &[(&str, DataType)],
    ) -> Result<NodeRef> {
        self.add(
            name,
            OperatorKind::CsvScan {
                fields: fields.iter().map(|(n, t)| (n.to_string(), *t)).collect(),
            },
            &[source],
        )
    }

    /// `age refers_to FieldExtractor("age")` applied to `rows`.
    pub fn field_extractor(
        &mut self,
        name: &str,
        rows: &NodeRef,
        field: &str,
        kind: ExtractorKind,
    ) -> Result<NodeRef> {
        self.add(
            name,
            OperatorKind::FieldExtractor {
                field: field.to_string(),
                kind,
            },
            &[rows],
        )
    }

    /// `ageBucket refers_to Bucketizer(age, bins=10)`.
    pub fn bucketizer(&mut self, name: &str, input: &NodeRef, bins: usize) -> Result<NodeRef> {
        if bins == 0 {
            return Err(HelixError::Workflow("bucketizer needs ≥ 1 bin".into()));
        }
        self.add(name, OperatorKind::Bucketizer { bins }, &[input])
    }

    /// `eduXocc refers_to InteractionFeature(Array(edu, occ))`.
    pub fn interaction(&mut self, name: &str, inputs: &[&NodeRef]) -> Result<NodeRef> {
        if inputs.len() < 2 {
            return Err(HelixError::Workflow("interaction needs ≥ 2 inputs".into()));
        }
        self.add(name, OperatorKind::Interaction, inputs)
    }

    /// `rows has_extractors(...)` + `income results_from rows with_labels
    /// target`: zips `rows` with the extractor fragments and a label.
    pub fn assemble(
        &mut self,
        name: &str,
        rows: &NodeRef,
        extractors: &[&NodeRef],
        label: &NodeRef,
    ) -> Result<NodeRef> {
        if extractors.is_empty() {
            return Err(HelixError::Workflow("assemble needs ≥ 1 extractor".into()));
        }
        let mut parents: Vec<&NodeRef> = vec![rows];
        parents.extend_from_slice(extractors);
        parents.push(label);
        self.add(name, OperatorKind::AssembleFeatures, &parents)
    }

    /// `incPred refers_to new Learner(...)` + `predictions results_from
    /// incPred on income`, fused into train-then-apply: returns the
    /// *predictions* node (the trained model is its own upstream node named
    /// `<name>__model`).
    pub fn learner(
        &mut self,
        name: &str,
        examples: &NodeRef,
        spec: LearnerSpec,
    ) -> Result<NodeRef> {
        let model = self.add(
            format!("{name}__model"),
            OperatorKind::Train(spec),
            &[examples],
        )?;
        self.add(name, OperatorKind::Apply, &[&model, examples])
    }

    /// Declares only the training node (for workflows that apply one model
    /// to several collections).
    pub fn train(&mut self, name: &str, examples: &NodeRef, spec: LearnerSpec) -> Result<NodeRef> {
        self.add(name, OperatorKind::Train(spec), &[examples])
    }

    /// Applies an existing trained-model node to a collection.
    pub fn apply(&mut self, name: &str, model: &NodeRef, examples: &NodeRef) -> Result<NodeRef> {
        self.add(name, OperatorKind::Apply, &[model, examples])
    }

    /// `checked results_from checkResults on testData(predictions)`.
    pub fn evaluate(
        &mut self,
        name: &str,
        predictions: &NodeRef,
        spec: EvalSpec,
    ) -> Result<NodeRef> {
        self.add(name, OperatorKind::Evaluate(spec), &[predictions])
    }

    /// An arbitrary user-defined transform (inline UDFs in the paper DSL).
    pub fn udf(&mut self, name: &str, inputs: &[&NodeRef], udf: Udf) -> Result<NodeRef> {
        self.add(name, OperatorKind::UserDefined(udf), inputs)
    }

    /// A row-wise user-defined transform the scheduler may partition: each
    /// output row depends only on the corresponding row of the *first*
    /// input (see [`OperatorKind::RowUdf`] for the exact contract). Use
    /// [`Workflow::udf`] for transforms that aggregate across rows.
    pub fn row_udf(&mut self, name: &str, inputs: &[&NodeRef], udf: Udf) -> Result<NodeRef> {
        self.add(name, OperatorKind::RowUdf(udf), inputs)
    }

    // -- iteration support ---------------------------------------------------

    /// Replaces the operator at a named node, keeping its wiring — the
    /// primitive behind iterative modifications ("change the regularization
    /// parameter", "swap the eval metric").
    pub fn replace_operator(&mut self, name: &str, kind: OperatorKind) -> Result<()> {
        let id = self
            .by_name(name)
            .ok_or_else(|| HelixError::Workflow(format!("no node named `{name}`")))?;
        self.nodes[id.index()].kind = kind;
        Ok(())
    }

    /// Rewires the parents of a named node (e.g. adding an extractor to an
    /// `assemble` node — the paper's `has_extractors` edit).
    pub fn rewire(&mut self, name: &str, parents: &[&NodeRef]) -> Result<()> {
        let id = self
            .by_name(name)
            .ok_or_else(|| HelixError::Workflow(format!("no node named `{name}`")))?;
        let parent_ids: Vec<NodeId> = parents.iter().map(|r| r.0).collect();
        for pid in &parent_ids {
            if pid.index() >= self.nodes.len() {
                return Err(HelixError::Workflow(format!(
                    "parent id {pid:?} does not exist"
                )));
            }
            if *pid == id {
                return Err(HelixError::Workflow(format!(
                    "`{name}` cannot be its own parent"
                )));
            }
        }
        self.nodes[id.index()].parents = parent_ids;
        Ok(())
    }

    /// Resolves the *training* node behind a learner name: either the
    /// node itself when it is a [`OperatorKind::Train`] declaration, or
    /// the `<name>__model` twin the [`Workflow::learner`] sugar creates.
    /// This is what typed session edits (`set_learner_param`) target.
    pub fn train_node(&self, learner: &str) -> Result<NodeId> {
        let direct = self
            .by_name(learner)
            .filter(|id| matches!(self.node(*id).kind, OperatorKind::Train(_)));
        if let Some(id) = direct {
            return Ok(id);
        }
        self.by_name(&format!("{learner}__model"))
            .filter(|id| matches!(self.node(*id).kind, OperatorKind::Train(_)))
            .ok_or_else(|| HelixError::Workflow(format!("no learner node named `{learner}`")))
    }

    /// A handle for an existing node, for rewiring.
    pub fn node_ref(&self, name: &str) -> Result<NodeRef> {
        self.by_name(name)
            .map(NodeRef)
            .ok_or_else(|| HelixError::Workflow(format!("no node named `{name}`")))
    }

    // -- graph queries -------------------------------------------------------

    /// Children lists per node (inverse of parent wiring).
    pub fn children(&self) -> Vec<Vec<NodeId>> {
        let mut children = vec![Vec::new(); self.nodes.len()];
        for (i, node) in self.nodes.iter().enumerate() {
            for parent in &node.parents {
                children[parent.index()].push(NodeId(i as u32));
            }
        }
        children
    }

    /// Topological order of all nodes.
    ///
    /// # Errors
    /// [`HelixError::Compile`] if rewiring created a cycle.
    pub fn topo_order(&self) -> Result<Vec<NodeId>> {
        let n = self.nodes.len();
        let mut indegree = vec![0usize; n];
        for (i, node) in self.nodes.iter().enumerate() {
            indegree[i] = node.parents.len();
        }
        let children = self.children();
        let mut queue: Vec<NodeId> = (0..n)
            .filter(|&i| indegree[i] == 0)
            .map(|i| NodeId(i as u32))
            .collect();
        // Deterministic order: process smallest id first.
        queue.sort();
        let mut order = Vec::with_capacity(n);
        let mut head = 0;
        while head < queue.len() {
            let id = queue[head];
            head += 1;
            order.push(id);
            let mut newly_ready: Vec<NodeId> = Vec::new();
            for &child in &children[id.index()] {
                indegree[child.index()] -= 1;
                if indegree[child.index()] == 0 {
                    newly_ready.push(child);
                }
            }
            newly_ready.sort();
            queue.extend(newly_ready);
        }
        if order.len() != n {
            return Err(HelixError::Compile("workflow contains a cycle".into()));
        }
        Ok(order)
    }

    /// All ancestors (transitive parents) of a node, excluding itself.
    pub fn ancestors(&self, id: NodeId) -> Vec<NodeId> {
        let mut seen = vec![false; self.nodes.len()];
        let mut stack = self.nodes[id.index()].parents.clone();
        let mut out = Vec::new();
        while let Some(p) = stack.pop() {
            if !seen[p.index()] {
                seen[p.index()] = true;
                out.push(p);
                stack.extend(self.nodes[p.index()].parents.iter().copied());
            }
        }
        out.sort();
        out
    }

    /// All descendants (transitive children) of a node, excluding itself.
    pub fn descendants(&self, id: NodeId) -> Vec<NodeId> {
        let children = self.children();
        let mut seen = vec![false; self.nodes.len()];
        let mut stack = children[id.index()].clone();
        let mut out = Vec::new();
        while let Some(c) = stack.pop() {
            if !seen[c.index()] {
                seen[c.index()] = true;
                out.push(c);
                stack.extend(children[c.index()].iter().copied());
            }
        }
        out.sort();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn linear_workflow() -> (Workflow, NodeRef, NodeRef, NodeRef) {
        let mut w = Workflow::new("t");
        let a = w.csv_source("a", "train.csv", None::<&str>).unwrap();
        let b = w.csv_scanner("b", &a, &[("x", DataType::Int)]).unwrap();
        let c = w
            .field_extractor("c", &b, "x", ExtractorKind::Numeric)
            .unwrap();
        (w, a, b, c)
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut w = Workflow::new("t");
        w.csv_source("a", "x.csv", None::<&str>).unwrap();
        assert!(w.csv_source("a", "y.csv", None::<&str>).is_err());
    }

    #[test]
    fn empty_name_rejected() {
        let mut w = Workflow::new("t");
        assert!(w.csv_source("", "x.csv", None::<&str>).is_err());
    }

    #[test]
    fn topo_order_respects_parents() {
        let (w, ..) = linear_workflow();
        let order = w.topo_order().unwrap();
        let pos: Vec<usize> = order.iter().map(|id| id.index()).collect();
        assert_eq!(pos.len(), 3);
        assert!(pos.iter().position(|&p| p == 0) < pos.iter().position(|&p| p == 1));
    }

    #[test]
    fn cycles_detected_after_rewire() {
        let (mut w, _a, b, c) = linear_workflow();
        // b's parent becomes c: a cycle b -> c -> b.
        w.rewire("b", &[&c]).unwrap();
        let _ = b;
        assert!(w.topo_order().is_err());
    }

    #[test]
    fn self_parent_rejected() {
        let (mut w, _a, b, _c) = linear_workflow();
        assert!(w.rewire("b", &[&b]).is_err());
    }

    #[test]
    fn ancestors_and_descendants() {
        let (w, a, b, c) = linear_workflow();
        assert_eq!(w.ancestors(c.0), vec![a.0, b.0]);
        assert_eq!(w.descendants(a.0), vec![b.0, c.0]);
        assert!(w.ancestors(a.0).is_empty());
        assert!(w.descendants(c.0).is_empty());
    }

    #[test]
    fn learner_creates_model_and_apply_nodes() {
        let mut w = Workflow::new("t");
        let src = w.csv_source("data", "train.csv", None::<&str>).unwrap();
        let rows = w
            .csv_scanner("rows", &src, &[("x", DataType::Int)])
            .unwrap();
        let ext = w
            .field_extractor("x", &rows, "x", ExtractorKind::Numeric)
            .unwrap();
        let label = w
            .field_extractor("y", &rows, "x", ExtractorKind::Numeric)
            .unwrap();
        let income = w.assemble("income", &rows, &[&ext], &label).unwrap();
        let preds = w
            .learner("predictions", &income, LearnerSpec::default())
            .unwrap();
        assert!(w.by_name("predictions__model").is_some());
        let node = w.node(preds.0);
        assert_eq!(node.parents.len(), 2);
        assert!(matches!(node.kind, OperatorKind::Apply));
    }

    #[test]
    fn train_node_resolves_learner_sugar_and_direct_train() {
        let mut w = Workflow::new("t");
        let src = w.csv_source("data", "train.csv", None::<&str>).unwrap();
        let rows = w
            .csv_scanner("rows", &src, &[("x", DataType::Int)])
            .unwrap();
        let ext = w
            .field_extractor("x", &rows, "x", ExtractorKind::Numeric)
            .unwrap();
        let label = w
            .field_extractor("y", &rows, "x", ExtractorKind::Numeric)
            .unwrap();
        let income = w.assemble("income", &rows, &[&ext], &label).unwrap();
        w.learner("predictions", &income, LearnerSpec::default())
            .unwrap();
        let direct = w.train("solo", &income, LearnerSpec::default()).unwrap();
        assert_eq!(
            w.train_node("predictions").unwrap(),
            w.by_name("predictions__model").unwrap()
        );
        assert_eq!(w.train_node("solo").unwrap(), direct.0);
        assert!(w.train_node("rows").is_err(), "not a learner");
        assert!(w.train_node("zzz").is_err());
    }

    #[test]
    fn outputs_deduplicate() {
        let (mut w, a, ..) = linear_workflow();
        w.output(&a);
        w.output(&a);
        assert_eq!(w.outputs().len(), 1);
    }

    #[test]
    fn replace_operator_changes_params() {
        let (mut w, ..) = linear_workflow();
        w.replace_operator(
            "c",
            OperatorKind::FieldExtractor {
                field: "x".into(),
                kind: ExtractorKind::Categorical,
            },
        )
        .unwrap();
        assert!(w
            .node(w.by_name("c").unwrap())
            .kind
            .params_string()
            .contains("Categorical"));
        assert!(w
            .replace_operator("zzz", OperatorKind::Interaction)
            .is_err());
    }

    #[test]
    fn validation_of_dsl_arities() {
        let (mut w, _a, b, c) = linear_workflow();
        assert!(w.interaction("i", &[&c]).is_err());
        assert!(w.bucketizer("bk", &c, 0).is_err());
        let label = w
            .field_extractor("lbl", &b, "x", ExtractorKind::Numeric)
            .unwrap();
        assert!(w.assemble("asm", &b, &[], &label).is_err());
    }
}
