//! Operator taxonomy and node outputs.
//!
//! The DSL supports "a handful of operator types" (paper §2.1) covering
//! fine- and coarse-grained feature engineering plus supervised learning;
//! arbitrary imperative code enters through [`Udf`] operators, mirroring
//! the paper's inline Scala UDFs.

use crate::Result;
use helix_dataflow::DataCollection;
use std::fmt;
use std::path::PathBuf;
use std::sync::Arc;

/// A user-defined transform over data collections.
///
/// Operator equivalence for arbitrary functions is undecidable (Rice's
/// theorem, paper §2.2), so UDFs carry an explicit `version` string that
/// stands in for source-control-based change detection: bump the version
/// and Helix invalidates every result downstream of the UDF.
#[derive(Clone)]
pub struct Udf {
    /// Version tag participating in the operator signature.
    pub version: String,
    /// The transform itself: inputs are parent outputs, in wiring order.
    pub func: Arc<UdfFn>,
}

/// Signature of a user-defined transform over parent outputs.
pub type UdfFn = dyn Fn(&[&DataCollection]) -> Result<DataCollection> + Send + Sync;

impl Udf {
    /// Wraps a closure with a version tag.
    pub fn new(
        version: impl Into<String>,
        func: impl Fn(&[&DataCollection]) -> Result<DataCollection> + Send + Sync + 'static,
    ) -> Self {
        Udf {
            version: version.into(),
            func: Arc::new(func),
        }
    }
}

impl fmt::Debug for Udf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Udf")
            .field("version", &self.version)
            .finish_non_exhaustive()
    }
}

/// How a [`OperatorKind::FieldExtractor`] turns a column into features.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExtractorKind {
    /// One-hot: emits `field=value → 1.0`.
    Categorical,
    /// Numeric passthrough: emits `field → value` (nulls skipped).
    Numeric,
}

/// Which model a [`OperatorKind::Train`] node fits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelType {
    /// Binary logistic regression (SGD + L2).
    LogisticRegression,
    /// Ridge linear regression.
    LinearRegression,
    /// Bernoulli naive Bayes.
    NaiveBayes,
    /// Averaged multi-class perceptron.
    Perceptron,
}

impl ModelType {
    /// Inverse of [`fmt::Display`]: parses the canonical short name back
    /// into the enum (used when replaying persisted session edits).
    pub fn from_name(name: &str) -> Option<ModelType> {
        match name {
            "logreg" => Some(ModelType::LogisticRegression),
            "linreg" => Some(ModelType::LinearRegression),
            "naive_bayes" => Some(ModelType::NaiveBayes),
            "perceptron" => Some(ModelType::Perceptron),
            _ => None,
        }
    }
}

impl fmt::Display for ModelType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            ModelType::LogisticRegression => "logreg",
            ModelType::LinearRegression => "linreg",
            ModelType::NaiveBayes => "naive_bayes",
            ModelType::Perceptron => "perceptron",
        };
        write!(f, "{name}")
    }
}

/// Hyperparameters for a learner node — the paper's
/// `new Learner(modelType, regParam=0.1)`.
#[derive(Debug, Clone, PartialEq)]
pub struct LearnerSpec {
    /// Which model family to train.
    pub model_type: ModelType,
    /// L2 regularization strength.
    pub reg_param: f64,
    /// SGD epochs (ignored by naive Bayes).
    pub epochs: usize,
    /// SGD learning rate (ignored by naive Bayes).
    pub learning_rate: f64,
    /// Training seed; fixed for reuse correctness.
    pub seed: u64,
}

impl Default for LearnerSpec {
    fn default() -> Self {
        LearnerSpec {
            model_type: ModelType::LogisticRegression,
            reg_param: 0.1,
            epochs: 8,
            learning_rate: 0.5,
            seed: 42,
        }
    }
}

impl LearnerSpec {
    /// Canonical parameter string folded into the operator signature.
    pub fn signature_string(&self) -> String {
        format!(
            "model={};reg={};epochs={};lr={};seed={}",
            self.model_type, self.reg_param, self.epochs, self.learning_rate, self.seed
        )
    }
}

/// A metric computed by an [`OperatorKind::Evaluate`] node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Fraction correct (threshold 0.5).
    Accuracy,
    /// Positive-class precision.
    Precision,
    /// Positive-class recall.
    Recall,
    /// F1 score.
    F1,
    /// Mean negative log likelihood.
    LogLoss,
    /// Root mean squared error.
    Rmse,
}

impl MetricKind {
    /// Stable name used in metric result rows and the version store.
    pub fn name(&self) -> &'static str {
        match self {
            MetricKind::Accuracy => "accuracy",
            MetricKind::Precision => "precision",
            MetricKind::Recall => "recall",
            MetricKind::F1 => "f1",
            MetricKind::LogLoss => "log_loss",
            MetricKind::Rmse => "rmse",
        }
    }
}

/// Configuration for an evaluation (`Reducer`) node.
#[derive(Debug, Clone, PartialEq)]
pub struct EvalSpec {
    /// Metrics to compute.
    pub metrics: Vec<MetricKind>,
    /// Which `__split__` value to evaluate on.
    pub split: String,
}

impl Default for EvalSpec {
    fn default() -> Self {
        EvalSpec {
            metrics: vec![MetricKind::Accuracy],
            split: crate::SPLIT_TEST.to_string(),
        }
    }
}

impl EvalSpec {
    /// Canonical parameter string folded into the operator signature.
    pub fn signature_string(&self) -> String {
        let names: Vec<&str> = self.metrics.iter().map(MetricKind::name).collect();
        format!("metrics={};split={}", names.join("+"), self.split)
    }
}

/// The operator executed at a DAG node.
#[derive(Debug, Clone)]
pub enum OperatorKind {
    /// Reads train (and optionally test) CSV files as raw lines tagged
    /// with a `__split__` column — the paper's `FileSource`.
    CsvSource {
        /// Training-split file.
        train_path: PathBuf,
        /// Optional held-out-split file.
        test_path: Option<PathBuf>,
    },
    /// Reads a one-document-per-line corpus, assigning train/test splits
    /// deterministically by document index.
    TextSource {
        /// Corpus file.
        path: PathBuf,
        /// Fraction of documents routed to the test split.
        test_fraction: f64,
    },
    /// Parses raw CSV lines into typed columns — the paper's `CSVScanner`.
    CsvScan {
        /// Column names and types, in file order.
        fields: Vec<(String, helix_dataflow::DataType)>,
    },
    /// Emits per-row feature fragments from one column.
    FieldExtractor {
        /// Source column.
        field: String,
        /// One-hot or numeric.
        kind: ExtractorKind,
    },
    /// Equal-width-buckets a numeric extractor's output.
    Bucketizer {
        /// Number of buckets.
        bins: usize,
    },
    /// Crosses two or more extractors' features (`InteractionFeature`).
    Interaction,
    /// Zips a base collection with extractor fragments and a label
    /// extractor into learner-ready rows — `has_extractors` +
    /// `results_from … with_labels`.
    AssembleFeatures,
    /// Trains a model — the paper's `Learner`.
    Train(LearnerSpec),
    /// Applies a trained model, appending `score` and `pred` columns.
    Apply,
    /// Computes metrics — the paper's `Reducer`.
    Evaluate(EvalSpec),
    /// Arbitrary user transform.
    UserDefined(Udf),
    /// A user transform whose output rows depend only on the
    /// corresponding rows of its *first* input — a per-row map/flat-map.
    ///
    /// The contract buys data parallelism: the scheduler may split the
    /// first input into row ranges and run the closure on each slice
    /// concurrently (other inputs are passed whole to every slice), then
    /// concatenate the slice outputs in order. The result must be
    /// byte-identical to one whole-input call, so the closure must not
    /// aggregate across rows of input 0 or depend on the collection's
    /// total length. Use [`OperatorKind::UserDefined`] for anything
    /// global (joins keyed on input 0, sorts, aggregations).
    RowUdf(Udf),
}

impl OperatorKind {
    /// Short kind tag for visualization and signatures.
    pub fn tag(&self) -> &'static str {
        match self {
            OperatorKind::CsvSource { .. } => "csv_source",
            OperatorKind::TextSource { .. } => "text_source",
            OperatorKind::CsvScan { .. } => "csv_scan",
            OperatorKind::FieldExtractor { .. } => "field_extractor",
            OperatorKind::Bucketizer { .. } => "bucketizer",
            OperatorKind::Interaction => "interaction",
            OperatorKind::AssembleFeatures => "assemble",
            OperatorKind::Train(_) => "train",
            OperatorKind::Apply => "apply",
            OperatorKind::Evaluate(_) => "evaluate",
            OperatorKind::UserDefined(_) => "udf",
            OperatorKind::RowUdf(_) => "row_udf",
        }
    }

    /// Canonical parameter string; two operators with equal tags and equal
    /// parameter strings are considered unchanged by the change tracker.
    pub fn params_string(&self) -> String {
        match self {
            OperatorKind::CsvSource {
                train_path,
                test_path,
            } => format!(
                "train={};test={}",
                train_path.display(),
                test_path
                    .as_ref()
                    .map(|p| p.display().to_string())
                    .unwrap_or_default()
            ),
            OperatorKind::TextSource {
                path,
                test_fraction,
            } => {
                format!("path={};test_fraction={test_fraction}", path.display())
            }
            OperatorKind::CsvScan { fields } => {
                let cols: Vec<String> = fields.iter().map(|(n, t)| format!("{n}:{t}")).collect();
                cols.join(",")
            }
            OperatorKind::FieldExtractor { field, kind } => {
                format!("field={field};kind={kind:?}")
            }
            OperatorKind::Bucketizer { bins } => format!("bins={bins}"),
            OperatorKind::Interaction => String::new(),
            OperatorKind::AssembleFeatures => String::new(),
            OperatorKind::Train(spec) => spec.signature_string(),
            OperatorKind::Apply => String::new(),
            OperatorKind::Evaluate(spec) => spec.signature_string(),
            OperatorKind::UserDefined(udf) | OperatorKind::RowUdf(udf) => {
                format!("version={}", udf.version)
            }
        }
    }

    /// Workflow stage for Fig.-2-style coloring: data pre-processing
    /// (purple), machine learning (orange), or evaluation (green).
    pub fn stage(&self) -> Stage {
        match self {
            OperatorKind::Train(_) | OperatorKind::Apply => Stage::MachineLearning,
            OperatorKind::Evaluate(_) => Stage::Evaluation,
            _ => Stage::DataPreProcessing,
        }
    }
}

/// Coarse workflow stage (paper Fig. 2's purple / orange / green).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Sources, scanners, extractors, UDF transforms.
    DataPreProcessing,
    /// Training and model application.
    MachineLearning,
    /// Metric computation / post-processing.
    Evaluation,
}

impl Stage {
    /// Inverse of [`fmt::Display`]: parses the canonical stage name back
    /// into the enum (used when loading persisted DAG snapshots).
    pub fn from_name(name: &str) -> Option<Stage> {
        match name {
            "data-pre-processing" => Some(Stage::DataPreProcessing),
            "machine-learning" => Some(Stage::MachineLearning),
            "evaluation" => Some(Stage::Evaluation),
            _ => None,
        }
    }
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Stage::DataPreProcessing => "data-pre-processing",
            Stage::MachineLearning => "machine-learning",
            Stage::Evaluation => "evaluation",
        };
        write!(f, "{name}")
    }
}

/// A trained model bundled with the feature dictionary it was fit under.
///
/// Apply nodes need the training-time feature space to vectorize test rows
/// consistently, so the pair is materialized as one unit.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainedModel {
    /// The fitted model.
    pub model: helix_ml::Model,
    /// Feature names in index order (rebuilds the frozen feature space).
    pub feature_names: Vec<String>,
}

impl TrainedModel {
    /// Serializes the bundle.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(self.feature_names.len() as u64).to_le_bytes());
        for name in &self.feature_names {
            buf.extend_from_slice(&(name.len() as u32).to_le_bytes());
            buf.extend_from_slice(name.as_bytes());
        }
        let model_bytes = self.model.encode();
        buf.extend_from_slice(&(model_bytes.len() as u64).to_le_bytes());
        buf.extend_from_slice(&model_bytes);
        buf
    }

    /// Deserializes a bundle written by [`TrainedModel::encode`].
    pub fn decode(bytes: &[u8]) -> Result<TrainedModel> {
        let err = |msg: &str| crate::HelixError::Store(format!("model decode: {msg}"));
        let mut pos = 0usize;
        let take = |pos: &mut usize, n: usize| -> Result<&[u8]> {
            if *pos + n > bytes.len() {
                return Err(err("truncated"));
            }
            let s = &bytes[*pos..*pos + n];
            *pos += n;
            Ok(s)
        };
        let n = u64::from_le_bytes(take(&mut pos, 8)?.try_into().expect("8")) as usize;
        if n > 1 << 26 {
            return Err(err("implausible feature count"));
        }
        let mut feature_names = Vec::with_capacity(n.min(1 << 16));
        for _ in 0..n {
            let len = u32::from_le_bytes(take(&mut pos, 4)?.try_into().expect("4")) as usize;
            let name = std::str::from_utf8(take(&mut pos, len)?)
                .map_err(|_| err("feature name not UTF-8"))?
                .to_string();
            feature_names.push(name);
        }
        let mlen = u64::from_le_bytes(take(&mut pos, 8)?.try_into().expect("8")) as usize;
        let model_bytes = take(&mut pos, mlen)?;
        if pos != bytes.len() {
            return Err(err("trailing bytes"));
        }
        let model = helix_ml::Model::decode(model_bytes)?;
        Ok(TrainedModel {
            model,
            feature_names,
        })
    }

    /// Rebuilds the frozen feature space.
    pub fn feature_space(&self) -> helix_ml::FeatureSpace {
        let mut fs = helix_ml::FeatureSpace::new();
        for name in &self.feature_names {
            fs.intern(name).expect("unfrozen space accepts all names");
        }
        fs.freeze();
        fs
    }
}

/// The result produced by executing one node.
#[derive(Debug, Clone, PartialEq)]
pub enum NodeOutput {
    /// A data collection.
    Data(DataCollection),
    /// A trained model bundle.
    Model(TrainedModel),
}

const OUT_TAG_DATA: u8 = 1;
const OUT_TAG_MODEL: u8 = 2;

impl NodeOutput {
    /// Borrows the data collection, if this is one.
    pub fn as_data(&self) -> Result<&DataCollection> {
        match self {
            NodeOutput::Data(dc) => Ok(dc),
            NodeOutput::Model(_) => {
                Err(crate::HelixError::Exec("expected data, found model".into()))
            }
        }
    }

    /// Borrows the model bundle, if this is one.
    pub fn as_model(&self) -> Result<&TrainedModel> {
        match self {
            NodeOutput::Model(m) => Ok(m),
            NodeOutput::Data(_) => {
                Err(crate::HelixError::Exec("expected model, found data".into()))
            }
        }
    }

    /// Approximate in-memory/on-disk footprint in bytes.
    pub fn estimated_bytes(&self) -> usize {
        match self {
            NodeOutput::Data(dc) => dc.estimated_bytes(),
            NodeOutput::Model(m) => {
                m.feature_names.iter().map(|n| n.len() + 8).sum::<usize>() + 4096
            }
        }
    }

    /// Serializes for the intermediate store.
    pub fn encode(&self) -> Vec<u8> {
        match self {
            NodeOutput::Data(dc) => {
                let mut buf = vec![OUT_TAG_DATA];
                helix_dataflow::codec::encode_into(dc, &mut buf);
                buf
            }
            NodeOutput::Model(m) => {
                let mut buf = vec![OUT_TAG_MODEL];
                buf.extend_from_slice(&m.encode());
                buf
            }
        }
    }

    /// Deserializes bytes written by [`NodeOutput::encode`].
    pub fn decode(bytes: &[u8]) -> Result<NodeOutput> {
        let Some((&tag, rest)) = bytes.split_first() else {
            return Err(crate::HelixError::Store("empty node output".into()));
        };
        match tag {
            OUT_TAG_DATA => Ok(NodeOutput::Data(helix_dataflow::codec::decode(rest)?)),
            OUT_TAG_MODEL => Ok(NodeOutput::Model(TrainedModel::decode(rest)?)),
            other => Err(crate::HelixError::Store(format!(
                "bad node output tag {other}"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use helix_dataflow::{DataType, Row, Schema, Value};

    #[test]
    fn params_strings_distinguish_configs() {
        let a = OperatorKind::Train(LearnerSpec::default());
        let b = OperatorKind::Train(LearnerSpec {
            reg_param: 0.5,
            ..Default::default()
        });
        assert_ne!(a.params_string(), b.params_string());
        let c = OperatorKind::FieldExtractor {
            field: "age".into(),
            kind: ExtractorKind::Numeric,
        };
        let d = OperatorKind::FieldExtractor {
            field: "age".into(),
            kind: ExtractorKind::Categorical,
        };
        assert_ne!(c.params_string(), d.params_string());
    }

    #[test]
    fn stages_follow_paper_coloring() {
        assert_eq!(
            OperatorKind::CsvScan { fields: vec![] }.stage(),
            Stage::DataPreProcessing
        );
        assert_eq!(
            OperatorKind::Train(LearnerSpec::default()).stage(),
            Stage::MachineLearning
        );
        assert_eq!(
            OperatorKind::Evaluate(EvalSpec::default()).stage(),
            Stage::Evaluation
        );
    }

    #[test]
    fn node_output_data_round_trips() {
        let schema = Schema::of(&[("x", DataType::Int)]);
        let dc = DataCollection::new(schema, vec![Row(vec![Value::Int(5)])]).unwrap();
        let out = NodeOutput::Data(dc);
        let back = NodeOutput::decode(&out.encode()).unwrap();
        assert_eq!(back, out);
        assert!(back.as_data().is_ok());
        assert!(back.as_model().is_err());
    }

    #[test]
    fn node_output_model_round_trips() {
        let ds = helix_ml::Dataset::new(
            vec![helix_ml::LabeledExample {
                features: helix_ml::SparseVector::from_pairs(vec![(0, 1.0)]),
                label: 1.0,
            }],
            1,
        );
        let model =
            helix_ml::logreg::train(&ds, &helix_ml::logreg::LogRegConfig::default()).unwrap();
        let bundle = TrainedModel {
            model: helix_ml::Model::LogReg(model),
            feature_names: vec!["edu=BS".into()],
        };
        let out = NodeOutput::Model(bundle);
        let back = NodeOutput::decode(&out.encode()).unwrap();
        assert_eq!(back, out);
        let fs = back.as_model().unwrap().feature_space();
        assert_eq!(fs.lookup("edu=BS"), Some(0));
        assert!(fs.is_frozen());
    }

    #[test]
    fn node_output_rejects_garbage() {
        assert!(NodeOutput::decode(&[]).is_err());
        assert!(NodeOutput::decode(&[9, 1, 2]).is_err());
    }

    #[test]
    fn udf_debug_hides_closure() {
        let udf = Udf::new("v1", |inputs| Ok(inputs[0].clone()));
        let shown = format!("{udf:?}");
        assert!(shown.contains("v1"));
    }
}
