//! Max-flow / min-cut algorithms and the Project Selection Problem solver
//! used by Helix's recomputation optimizer.
//!
//! The Helix paper (Xin et al., VLDB 2018, §2.2) shows that deciding which
//! intermediate results to *load*, *compute*, or *prune* in an iteration is
//! polynomial-time solvable via a reduction to the **Project Selection
//! Problem** (Kleinberg & Tardos, *Algorithm Design*), itself solved with one
//! min *s*-*t* cut computation. This crate provides:
//!
//! * [`FlowNetwork`] — a residual-graph representation with integer
//!   capacities,
//! * [`FlowNetwork::dinic`] — Dinic's algorithm (the production path,
//!   `O(V^2 E)` worst case, near-linear on the shallow DAG-shaped networks
//!   Helix produces),
//! * [`FlowNetwork::edmonds_karp`] — a simple `O(V E^2)` reference
//!   implementation used to cross-check Dinic in tests,
//! * [`ProjectSelection`] — maximum-profit closure of a prerequisite graph.
//!
//! Capacities are `u64`; use [`CAP_INF`] for "uncuttable" edges (prerequisite
//! edges in project selection). All arithmetic saturates so that several
//! `CAP_INF` edges never overflow.

#![warn(missing_docs)]

mod flow;
mod psp;

pub use flow::{FlowNetwork, MaxFlowResult, CAP_INF};
pub use psp::{Project, ProjectId, ProjectSelection, SelectionResult};

#[cfg(test)]
mod tests;
