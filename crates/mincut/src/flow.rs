//! Residual flow network with Dinic's and Edmonds–Karp max-flow.

use std::collections::VecDeque;

/// Sentinel capacity for edges that must never be cut.
///
/// Large enough to dominate any real cost, small enough that summing many
/// such capacities cannot overflow a `u64` (we additionally saturate).
pub const CAP_INF: u64 = 1 << 60;

/// A directed edge in the residual graph.
#[derive(Debug, Clone)]
struct Edge {
    /// Target vertex.
    to: u32,
    /// Remaining capacity.
    cap: u64,
}

/// A flow network over vertices `0..n` with integer capacities.
///
/// Edges are stored in a flat arena; edge `i` and its reverse edge `i ^ 1`
/// are adjacent so residual updates are branch-free. Vertices are plain
/// `usize` indices — callers map their domain objects onto them.
///
/// ```
/// use helix_mincut::FlowNetwork;
/// let mut net = FlowNetwork::new(4);
/// let (s, a, b, t) = (0, 1, 2, 3);
/// net.add_edge(s, a, 3);
/// net.add_edge(s, b, 2);
/// net.add_edge(a, t, 2);
/// net.add_edge(b, t, 3);
/// net.add_edge(a, b, 1);
/// let result = net.dinic(s, t);
/// assert_eq!(result.max_flow, 5);
/// ```
#[derive(Debug, Clone)]
pub struct FlowNetwork {
    /// `adj[v]` lists indices into `edges`.
    adj: Vec<Vec<u32>>,
    edges: Vec<Edge>,
    /// Original capacity of each edge (for flow reporting).
    orig_cap: Vec<u64>,
}

/// Result of a max-flow computation.
#[derive(Debug, Clone)]
pub struct MaxFlowResult {
    /// Value of the maximum flow == capacity of the minimum cut.
    pub max_flow: u64,
    /// `true` for vertices reachable from the source in the final residual
    /// graph, i.e. the source side of a minimum cut.
    pub source_side: Vec<bool>,
}

impl FlowNetwork {
    /// Creates an empty network with `n` vertices and no edges.
    pub fn new(n: usize) -> Self {
        FlowNetwork {
            adj: vec![Vec::new(); n],
            edges: Vec::new(),
            orig_cap: Vec::new(),
        }
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.adj.len()
    }

    /// Number of forward edges added via [`FlowNetwork::add_edge`].
    pub fn num_edges(&self) -> usize {
        self.edges.len() / 2
    }

    /// Adds a directed edge `from -> to` with capacity `cap`, plus its
    /// residual reverse edge. Returns an identifier usable with
    /// [`FlowNetwork::flow_on`].
    ///
    /// # Panics
    /// Panics if either endpoint is out of range.
    pub fn add_edge(&mut self, from: usize, to: usize, cap: u64) -> usize {
        assert!(from < self.adj.len(), "`from` vertex {from} out of range");
        assert!(to < self.adj.len(), "`to` vertex {to} out of range");
        let id = self.edges.len();
        self.edges.push(Edge { to: to as u32, cap });
        self.edges.push(Edge {
            to: from as u32,
            cap: 0,
        });
        self.adj[from].push(id as u32);
        self.adj[to].push(id as u32 + 1);
        self.orig_cap.push(cap);
        self.orig_cap.push(0);
        id
    }

    /// Flow currently routed through the forward edge returned by
    /// [`FlowNetwork::add_edge`] (only meaningful after running a max-flow).
    pub fn flow_on(&self, edge_id: usize) -> u64 {
        self.orig_cap[edge_id] - self.edges[edge_id].cap
    }

    /// Computes a maximum `source -> sink` flow with Dinic's algorithm and
    /// returns the flow value together with the source side of a min cut.
    ///
    /// Consumes the residual state: calling it twice on the same instance
    /// returns `0` the second time. Clone the network first if needed.
    pub fn dinic(&mut self, source: usize, sink: usize) -> MaxFlowResult {
        assert_ne!(source, sink, "source and sink must differ");
        let n = self.adj.len();
        let mut level = vec![-1i32; n];
        let mut iter = vec![0usize; n];
        let mut total: u64 = 0;

        while self.bfs_levels(source, sink, &mut level) {
            iter.iter_mut().for_each(|i| *i = 0);
            loop {
                let pushed = self.dfs_augment(source, sink, u64::MAX, &level, &mut iter);
                if pushed == 0 {
                    break;
                }
                total = total.saturating_add(pushed);
            }
        }

        // After termination `level` holds -1 exactly for vertices unreachable
        // from the source in the residual graph; recompute for clarity.
        let mut source_side = vec![false; n];
        self.residual_reachable(source, &mut source_side);
        MaxFlowResult {
            max_flow: total,
            source_side,
        }
    }

    /// Computes a maximum flow with the Edmonds–Karp algorithm (BFS
    /// augmenting paths). Slower than [`FlowNetwork::dinic`]; retained as an
    /// independent implementation for differential testing.
    pub fn edmonds_karp(&mut self, source: usize, sink: usize) -> MaxFlowResult {
        assert_ne!(source, sink, "source and sink must differ");
        let n = self.adj.len();
        let mut total: u64 = 0;
        // `parent_edge[v]` = edge index used to reach v on the BFS path.
        let mut parent_edge = vec![u32::MAX; n];

        loop {
            parent_edge.iter_mut().for_each(|p| *p = u32::MAX);
            let mut queue = VecDeque::new();
            queue.push_back(source as u32);
            let mut seen = vec![false; n];
            seen[source] = true;
            'bfs: while let Some(v) = queue.pop_front() {
                for &eid in &self.adj[v as usize] {
                    let e = &self.edges[eid as usize];
                    if e.cap > 0 && !seen[e.to as usize] {
                        seen[e.to as usize] = true;
                        parent_edge[e.to as usize] = eid;
                        if e.to as usize == sink {
                            break 'bfs;
                        }
                        queue.push_back(e.to);
                    }
                }
            }
            if !seen[sink] {
                break;
            }
            // Find bottleneck along the path, then augment.
            let mut bottleneck = u64::MAX;
            let mut v = sink;
            while v != source {
                let eid = parent_edge[v] as usize;
                bottleneck = bottleneck.min(self.edges[eid].cap);
                v = self.edges[eid ^ 1].to as usize;
            }
            let mut v = sink;
            while v != source {
                let eid = parent_edge[v] as usize;
                self.edges[eid].cap -= bottleneck;
                self.edges[eid ^ 1].cap = self.edges[eid ^ 1].cap.saturating_add(bottleneck);
                v = self.edges[eid ^ 1].to as usize;
            }
            total = total.saturating_add(bottleneck);
        }

        let mut source_side = vec![false; n];
        self.residual_reachable(source, &mut source_side);
        MaxFlowResult {
            max_flow: total,
            source_side,
        }
    }

    /// BFS computing level graph; returns whether the sink is reachable.
    fn bfs_levels(&self, source: usize, sink: usize, level: &mut [i32]) -> bool {
        level.iter_mut().for_each(|l| *l = -1);
        level[source] = 0;
        let mut queue = VecDeque::new();
        queue.push_back(source as u32);
        while let Some(v) = queue.pop_front() {
            for &eid in &self.adj[v as usize] {
                let e = &self.edges[eid as usize];
                if e.cap > 0 && level[e.to as usize] < 0 {
                    level[e.to as usize] = level[v as usize] + 1;
                    queue.push_back(e.to);
                }
            }
        }
        level[sink] >= 0
    }

    /// Iterative DFS sending one blocking-path augmentation.
    fn dfs_augment(
        &mut self,
        source: usize,
        sink: usize,
        limit: u64,
        level: &[i32],
        iter: &mut [usize],
    ) -> u64 {
        // Explicit stack of (vertex, flow limit) avoids recursion on deep DAGs.
        let mut path: Vec<u32> = Vec::new(); // edge ids along the current path
        let mut v = source;
        let mut _limit = limit;
        loop {
            if v == sink {
                // Bottleneck over the path.
                let bottleneck = path
                    .iter()
                    .map(|&eid| self.edges[eid as usize].cap)
                    .min()
                    .unwrap_or(0);
                for &eid in &path {
                    self.edges[eid as usize].cap -= bottleneck;
                    let rev = (eid ^ 1) as usize;
                    self.edges[rev].cap = self.edges[rev].cap.saturating_add(bottleneck);
                }
                return bottleneck;
            }
            let mut advanced = false;
            while iter[v] < self.adj[v].len() {
                let eid = self.adj[v][iter[v]];
                let e = &self.edges[eid as usize];
                if e.cap > 0 && level[e.to as usize] == level[v] + 1 {
                    path.push(eid);
                    v = e.to as usize;
                    advanced = true;
                    break;
                }
                iter[v] += 1;
            }
            if advanced {
                continue;
            }
            // Dead end: retreat. Mark this vertex exhausted for this phase.
            if v == source {
                return 0;
            }
            let eid = path
                .pop()
                .expect("non-source dead end must have a path edge");
            let prev = self.edges[(eid ^ 1) as usize].to as usize;
            iter[prev] += 1;
            v = prev;
        }
    }

    /// Marks vertices reachable from `source` through positive-capacity
    /// residual edges.
    fn residual_reachable(&self, source: usize, out: &mut [bool]) {
        let mut queue = VecDeque::new();
        queue.push_back(source as u32);
        out[source] = true;
        while let Some(v) = queue.pop_front() {
            for &eid in &self.adj[v as usize] {
                let e = &self.edges[eid as usize];
                if e.cap > 0 && !out[e.to as usize] {
                    out[e.to as usize] = true;
                    queue.push_back(e.to);
                }
            }
        }
    }
}
