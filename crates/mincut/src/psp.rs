//! The Project Selection Problem (maximum-weight closure).
//!
//! Given projects with (possibly negative) profits and prerequisite edges
//! `i -> j` ("selecting `i` requires selecting `j`"), find the subset closed
//! under prerequisites maximizing total profit. Kleinberg & Tardos reduce
//! this to a minimum *s*-*t* cut; Helix's recomputation optimizer
//! (`helix-core`) reduces its load/compute/prune assignment to this problem.

use crate::flow::{FlowNetwork, CAP_INF};

/// Identifier of a project: its index in insertion order.
pub type ProjectId = usize;

/// A project with a profit (revenue minus cost; may be negative).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Project {
    /// Net profit of selecting this project.
    pub profit: i64,
    /// When `true` the project is forced into the selection regardless of
    /// profit (used by Helix to force workflow outputs to be available).
    pub mandatory: bool,
}

impl Project {
    /// A plain optional project with the given profit.
    pub fn new(profit: i64) -> Self {
        Project {
            profit,
            mandatory: false,
        }
    }

    /// A project that must appear in every feasible selection.
    pub fn mandatory(profit: i64) -> Self {
        Project {
            profit,
            mandatory: true,
        }
    }
}

/// Outcome of solving a [`ProjectSelection`] instance.
#[derive(Debug, Clone)]
pub struct SelectionResult {
    /// `selected[p]` is `true` iff project `p` is in the optimal closure.
    pub selected: Vec<bool>,
    /// Total profit of the selection (sum of profits of selected projects).
    pub profit: i64,
}

/// Builder for a Project Selection instance.
///
/// ```
/// use helix_mincut::{Project, ProjectSelection};
/// let mut psp = ProjectSelection::new();
/// let lucrative = psp.add_project(Project::new(10));
/// let costly = psp.add_project(Project::new(-4));
/// let dud = psp.add_project(Project::new(-20));
/// psp.require(lucrative, costly); // taking `lucrative` forces `costly`
/// let result = psp.solve();
/// assert!(result.selected[lucrative] && result.selected[costly]);
/// assert!(!result.selected[dud]);
/// assert_eq!(result.profit, 6);
/// ```
#[derive(Debug, Clone, Default)]
pub struct ProjectSelection {
    projects: Vec<Project>,
    /// Prerequisite pairs `(dependent, prerequisite)`.
    requires: Vec<(ProjectId, ProjectId)>,
}

impl ProjectSelection {
    /// Creates an empty instance.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a project, returning its id.
    pub fn add_project(&mut self, project: Project) -> ProjectId {
        self.projects.push(project);
        self.projects.len() - 1
    }

    /// Declares that selecting `dependent` requires selecting `prerequisite`.
    ///
    /// # Panics
    /// Panics if either id is unknown.
    pub fn require(&mut self, dependent: ProjectId, prerequisite: ProjectId) {
        assert!(
            dependent < self.projects.len(),
            "unknown dependent project {dependent}"
        );
        assert!(
            prerequisite < self.projects.len(),
            "unknown prerequisite project {prerequisite}"
        );
        self.requires.push((dependent, prerequisite));
    }

    /// Number of projects added so far.
    pub fn len(&self) -> usize {
        self.projects.len()
    }

    /// Whether the instance has no projects.
    pub fn is_empty(&self) -> bool {
        self.projects.is_empty()
    }

    /// Solves the instance via one min-cut computation.
    ///
    /// Mandatory projects are modelled by boosting their profit with a big-M
    /// bonus wired straight from the source; the bonus cannot be cut without
    /// exceeding any real cut, so such projects always land on the source
    /// side. The reported [`SelectionResult::profit`] excludes the bonus.
    pub fn solve(&self) -> SelectionResult {
        let n = self.projects.len();
        if n == 0 {
            return SelectionResult {
                selected: Vec::new(),
                profit: 0,
            };
        }
        let source = n;
        let sink = n + 1;
        let mut net = FlowNetwork::new(n + 2);
        for (id, p) in self.projects.iter().enumerate() {
            let effective = if p.mandatory {
                // Big-M: dominates any sum of real capacities in the network.
                CAP_INF as i64
            } else {
                p.profit
            };
            if effective > 0 {
                net.add_edge(source, id, effective as u64);
            } else if effective < 0 {
                net.add_edge(id, sink, effective.unsigned_abs());
            }
        }
        for &(dep, pre) in &self.requires {
            net.add_edge(dep, pre, CAP_INF);
        }
        let cut = net.dinic(source, sink);
        let mut selected = vec![false; n];
        let mut profit: i64 = 0;
        for (id, on_source_side) in selected.iter_mut().enumerate().take(n) {
            if cut.source_side[id] {
                *on_source_side = true;
                profit += self.projects[id].profit;
            }
        }
        SelectionResult { selected, profit }
    }

    /// Exhaustive solver for differential testing. Exponential in
    /// `self.len()`; panics beyond 20 projects.
    pub fn solve_brute_force(&self) -> SelectionResult {
        let n = self.projects.len();
        assert!(n <= 20, "brute force limited to 20 projects, got {n}");
        let mut best_profit = i64::MIN;
        let mut best_mask: u32 = 0;
        'mask: for mask in 0u32..(1 << n) {
            for (id, p) in self.projects.iter().enumerate() {
                if p.mandatory && mask & (1 << id) == 0 {
                    continue 'mask;
                }
            }
            for &(dep, pre) in &self.requires {
                if mask & (1 << dep) != 0 && mask & (1 << pre) == 0 {
                    continue 'mask;
                }
            }
            let profit: i64 = (0..n)
                .filter(|i| mask & (1 << i) != 0)
                .map(|i| self.projects[i].profit)
                .sum();
            if profit > best_profit {
                best_profit = profit;
                best_mask = mask;
            }
        }
        SelectionResult {
            selected: (0..n).map(|i| best_mask & (1 << i) != 0).collect(),
            profit: best_profit,
        }
    }
}
