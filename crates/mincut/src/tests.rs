//! Unit and property tests for max-flow and project selection.

use crate::{FlowNetwork, Project, ProjectSelection, CAP_INF};
use proptest::prelude::*;

// ---------------------------------------------------------------------------
// Max-flow unit tests
// ---------------------------------------------------------------------------

/// Classic 6-vertex CLRS example with max flow 23.
fn clrs_network() -> FlowNetwork {
    let mut net = FlowNetwork::new(6);
    net.add_edge(0, 1, 16);
    net.add_edge(0, 2, 13);
    net.add_edge(1, 2, 10);
    net.add_edge(2, 1, 4);
    net.add_edge(1, 3, 12);
    net.add_edge(3, 2, 9);
    net.add_edge(2, 4, 14);
    net.add_edge(4, 3, 7);
    net.add_edge(3, 5, 20);
    net.add_edge(4, 5, 4);
    net
}

#[test]
fn dinic_clrs_example() {
    let mut net = clrs_network();
    let result = net.dinic(0, 5);
    assert_eq!(result.max_flow, 23);
    assert!(result.source_side[0]);
    assert!(!result.source_side[5]);
}

#[test]
fn edmonds_karp_clrs_example() {
    let mut net = clrs_network();
    assert_eq!(net.edmonds_karp(0, 5).max_flow, 23);
}

#[test]
fn disconnected_sink_has_zero_flow() {
    let mut net = FlowNetwork::new(3);
    net.add_edge(0, 1, 10);
    let result = net.dinic(0, 2);
    assert_eq!(result.max_flow, 0);
    assert!(result.source_side[0] && result.source_side[1] && !result.source_side[2]);
}

#[test]
fn single_edge_flow() {
    let mut net = FlowNetwork::new(2);
    let e = net.add_edge(0, 1, 7);
    let result = net.dinic(0, 1);
    assert_eq!(result.max_flow, 7);
    assert_eq!(net.flow_on(e), 7);
}

#[test]
fn parallel_edges_accumulate() {
    let mut net = FlowNetwork::new(2);
    net.add_edge(0, 1, 3);
    net.add_edge(0, 1, 4);
    assert_eq!(net.dinic(0, 1).max_flow, 7);
}

#[test]
fn inf_edges_saturate_without_overflow() {
    let mut net = FlowNetwork::new(4);
    net.add_edge(0, 1, CAP_INF);
    net.add_edge(0, 2, CAP_INF);
    net.add_edge(1, 3, CAP_INF);
    net.add_edge(2, 3, CAP_INF);
    let result = net.dinic(0, 3);
    assert!(result.max_flow >= CAP_INF);
}

#[test]
fn min_cut_separates_source_and_sink() {
    let mut net = clrs_network();
    let result = net.dinic(0, 5);
    assert!(result.source_side[0]);
    assert!(!result.source_side[5]);
}

#[test]
fn long_path_does_not_recurse() {
    // A 10_000-vertex chain: the iterative DFS must handle this without
    // blowing the stack.
    let n = 10_000;
    let mut net = FlowNetwork::new(n);
    for v in 0..n - 1 {
        net.add_edge(v, v + 1, 5);
    }
    assert_eq!(net.dinic(0, n - 1).max_flow, 5);
}

#[test]
#[should_panic(expected = "out of range")]
fn add_edge_rejects_bad_vertex() {
    let mut net = FlowNetwork::new(2);
    net.add_edge(0, 5, 1);
}

#[test]
#[should_panic(expected = "must differ")]
fn dinic_rejects_equal_source_sink() {
    let mut net = FlowNetwork::new(2);
    net.add_edge(0, 1, 1);
    net.dinic(1, 1);
}

// ---------------------------------------------------------------------------
// Project selection unit tests
// ---------------------------------------------------------------------------

#[test]
fn psp_empty_instance() {
    let psp = ProjectSelection::new();
    let r = psp.solve();
    assert_eq!(r.profit, 0);
    assert!(r.selected.is_empty());
}

#[test]
fn psp_selects_all_positive_independent_projects() {
    let mut psp = ProjectSelection::new();
    let a = psp.add_project(Project::new(5));
    let b = psp.add_project(Project::new(3));
    let c = psp.add_project(Project::new(-2));
    let r = psp.solve();
    assert!(r.selected[a] && r.selected[b] && !r.selected[c]);
    assert_eq!(r.profit, 8);
}

#[test]
fn psp_textbook_chain() {
    // a(+10) requires b(-4) requires c(-3): worth it (profit 3).
    // d(+2) requires e(-9): not worth it.
    let mut psp = ProjectSelection::new();
    let a = psp.add_project(Project::new(10));
    let b = psp.add_project(Project::new(-4));
    let c = psp.add_project(Project::new(-3));
    let d = psp.add_project(Project::new(2));
    let e = psp.add_project(Project::new(-9));
    psp.require(a, b);
    psp.require(b, c);
    psp.require(d, e);
    let r = psp.solve();
    assert!(r.selected[a] && r.selected[b] && r.selected[c]);
    assert!(!r.selected[d] && !r.selected[e]);
    assert_eq!(r.profit, 3);
}

#[test]
fn psp_mandatory_forces_unprofitable_closure() {
    let mut psp = ProjectSelection::new();
    let a = psp.add_project(Project::mandatory(-100));
    let b = psp.add_project(Project::new(-50));
    psp.require(a, b);
    let r = psp.solve();
    assert!(r.selected[a] && r.selected[b]);
    assert_eq!(r.profit, -150);
}

#[test]
fn psp_shared_prerequisite_amortized() {
    // Two +6 projects share one -10 prerequisite: only together worth it.
    let mut psp = ProjectSelection::new();
    let a = psp.add_project(Project::new(6));
    let b = psp.add_project(Project::new(6));
    let shared = psp.add_project(Project::new(-10));
    psp.require(a, shared);
    psp.require(b, shared);
    let r = psp.solve();
    assert!(r.selected[a] && r.selected[b] && r.selected[shared]);
    assert_eq!(r.profit, 2);
}

#[test]
fn psp_result_is_a_closure() {
    let mut psp = ProjectSelection::new();
    for i in 0..8 {
        psp.add_project(Project::new(if i % 2 == 0 { 7 } else { -3 }));
    }
    for i in 1..8 {
        psp.require(i, i - 1);
    }
    let r = psp.solve();
    for &(dep, pre) in &[(1usize, 0usize), (4, 3), (7, 6)] {
        if r.selected[dep] {
            assert!(
                r.selected[pre],
                "closure violated: {dep} selected without {pre}"
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Property tests
// ---------------------------------------------------------------------------

/// Strategy producing a random small flow network plus (source, sink).
fn arb_network() -> impl Strategy<Value = (Vec<(usize, usize, u64)>, usize, usize)> {
    (2usize..9).prop_flat_map(|n| {
        let edges = proptest::collection::vec(
            (0..n, 0..n, 1u64..50).prop_filter("no self loops", |(a, b, _)| a != b),
            0..25,
        );
        (edges, Just(0usize), Just(n - 1))
    })
}

proptest! {
    /// Dinic and Edmonds–Karp agree on arbitrary graphs.
    #[test]
    fn dinic_matches_edmonds_karp((edges, s, t) in arb_network()) {
        let n = edges.iter().map(|&(a, b, _)| a.max(b) + 1).max().unwrap_or(2).max(t + 1);
        let mut net1 = FlowNetwork::new(n);
        let mut net2 = FlowNetwork::new(n);
        for &(a, b, c) in &edges {
            net1.add_edge(a, b, c);
            net2.add_edge(a, b, c);
        }
        prop_assert_eq!(net1.dinic(s, t).max_flow, net2.edmonds_karp(s, t).max_flow);
    }

    /// Max flow equals the capacity of the reported cut (weak duality check).
    #[test]
    fn flow_equals_reported_cut_capacity((edges, s, t) in arb_network()) {
        let n = edges.iter().map(|&(a, b, _)| a.max(b) + 1).max().unwrap_or(2).max(t + 1);
        let mut net = FlowNetwork::new(n);
        for &(a, b, c) in &edges {
            net.add_edge(a, b, c);
        }
        let result = net.dinic(s, t);
        let cut_cap: u64 = edges
            .iter()
            .filter(|&&(a, b, _)| result.source_side[a] && !result.source_side[b])
            .map(|&(_, _, c)| c)
            .sum();
        prop_assert_eq!(result.max_flow, cut_cap);
    }

    /// The min-cut PSP solver matches exhaustive search on random DAG
    /// instances, including mandatory projects.
    #[test]
    fn psp_matches_brute_force(
        profits in proptest::collection::vec(-40i64..40, 1..11),
        mandatory_mask in any::<u16>(),
        edge_seed in proptest::collection::vec((0usize..11, 0usize..11), 0..20),
    ) {
        let n = profits.len();
        let mut psp = ProjectSelection::new();
        for (i, &p) in profits.iter().enumerate() {
            // Only mark some projects mandatory; cap to avoid all-mandatory
            // trivial instances dominating.
            if mandatory_mask & (1 << i) != 0 && i % 3 == 0 {
                psp.add_project(Project::mandatory(p));
            } else {
                psp.add_project(Project::new(p));
            }
        }
        for &(a, b) in &edge_seed {
            // Orient edges downward (dep > pre) to keep the requirement
            // graph acyclic, matching Helix's DAG usage.
            let (a, b) = (a % n, b % n);
            if a > b {
                psp.require(a, b);
            }
        }
        let fast = psp.solve();
        let slow = psp.solve_brute_force();
        prop_assert_eq!(fast.profit, slow.profit);
        // Verify the fast selection is feasible and achieves its profit.
        let recomputed: i64 = (0..n).filter(|&i| fast.selected[i]).map(|i| profits[i]).sum();
        prop_assert_eq!(recomputed, fast.profit);
    }
}
