//! Hand-rolled HTTP/1.1 request parsing and response writing.
//!
//! The offline build environment has no network crates, so — exactly like
//! the dependency shims stand in for external APIs — this module
//! implements the minimal slice of HTTP/1.1 the front end needs: one
//! request per connection (`Connection: close`), `Content-Length` bodies
//! with a hard size cap, and plain status-line responses. It is generic
//! over `Read`/`Write`, so unit tests drive it with in-memory buffers and
//! the server with `TcpStream`s.

use std::io::{self, BufRead, BufReader, Read, Write};

/// Upper bound on the request line plus headers, defending the reader
/// against unbounded header streams.
const MAX_HEAD_BYTES: usize = 16 * 1024;

/// A parsed HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Uppercased method (`GET`, `POST`, …).
    pub method: String,
    /// Raw (undecoded) path, without the query string. Percent-escapes
    /// decode per segment in [`Request::segments`], so a `%2F` inside a
    /// session name never splits routing.
    pub path: String,
    /// Query parameters in order of appearance.
    pub query: Vec<(String, String)>,
    /// Request body (empty when no `Content-Length` was sent).
    pub body: String,
}

impl Request {
    /// First value of a query parameter.
    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Splits the path into non-empty segments (`/sessions/alice/edits`
    /// → `["sessions", "alice", "edits"]`), percent-decoding each
    /// segment after the split (`+` stays literal — the space
    /// convention is query-string-only).
    pub fn segments(&self) -> Vec<String> {
        self.path
            .split('/')
            .filter(|s| !s.is_empty())
            .map(|s| percent_decode(s, false))
            .collect()
    }
}

/// Why a request could not be parsed; each variant maps to one response
/// status.
#[derive(Debug)]
pub enum ParseError {
    /// Malformed request line, header, or framing → 400.
    Malformed(String),
    /// Body longer than the configured cap → 413.
    BodyTooLarge {
        /// The declared `Content-Length`.
        declared: usize,
        /// The configured cap.
        limit: usize,
    },
    /// The peer closed the connection before sending a request; not an
    /// error worth answering (browsers speculatively open connections).
    Closed,
    /// Transport failure while reading.
    Io(io::Error),
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::Malformed(msg) => write!(f, "malformed request: {msg}"),
            ParseError::BodyTooLarge { declared, limit } => {
                write!(
                    f,
                    "request body of {declared} bytes exceeds the {limit}-byte limit"
                )
            }
            ParseError::Closed => f.write_str("connection closed before a request arrived"),
            ParseError::Io(err) => write!(f, "i/o error: {err}"),
        }
    }
}

/// Reads and parses one request from `stream`, enforcing `max_body_bytes`.
pub fn read_request(stream: impl Read, max_body_bytes: usize) -> Result<Request, ParseError> {
    let mut reader = BufReader::new(stream.take((MAX_HEAD_BYTES + max_body_bytes) as u64));
    let mut line = String::new();
    read_line(&mut reader, &mut line)?;
    if line.is_empty() {
        return Err(ParseError::Closed);
    }
    let mut parts = line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| ParseError::Malformed("empty request line".into()))?
        .to_ascii_uppercase();
    let target = parts
        .next()
        .ok_or_else(|| ParseError::Malformed("request line has no path".into()))?;
    match parts.next() {
        Some(v) if v.starts_with("HTTP/1.") => {}
        _ => return Err(ParseError::Malformed("expected an HTTP/1.x version".into())),
    }

    let mut content_length = 0usize;
    let mut head_bytes = line.len();
    loop {
        let mut header = String::new();
        read_line(&mut reader, &mut header)?;
        head_bytes += header.len() + 2;
        if head_bytes > MAX_HEAD_BYTES {
            return Err(ParseError::Malformed("headers too large".into()));
        }
        if header.is_empty() {
            break;
        }
        let Some((name, value)) = header.split_once(':') else {
            return Err(ParseError::Malformed(format!(
                "header without colon: `{header}`"
            )));
        };
        if name.trim().eq_ignore_ascii_case("content-length") {
            content_length = value
                .trim()
                .parse()
                .map_err(|_| ParseError::Malformed("unreadable Content-Length".into()))?;
        }
    }

    if content_length > max_body_bytes {
        return Err(ParseError::BodyTooLarge {
            declared: content_length,
            limit: max_body_bytes,
        });
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).map_err(|err| {
        if err.kind() == io::ErrorKind::UnexpectedEof {
            ParseError::Malformed("body shorter than Content-Length".into())
        } else {
            ParseError::Io(err)
        }
    })?;
    let body =
        String::from_utf8(body).map_err(|_| ParseError::Malformed("body is not UTF-8".into()))?;

    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, parse_query(q)),
        None => (target, Vec::new()),
    };
    Ok(Request {
        method,
        path: path.to_string(),
        query,
        body,
    })
}

/// Reads one CRLF- (or LF-) terminated line, stripping the terminator.
fn read_line(reader: &mut impl BufRead, out: &mut String) -> Result<(), ParseError> {
    reader.read_line(out).map_err(|err| {
        if err.kind() == io::ErrorKind::InvalidData {
            ParseError::Malformed("header line is not UTF-8".into())
        } else {
            ParseError::Io(err)
        }
    })?;
    while out.ends_with('\n') || out.ends_with('\r') {
        out.pop();
    }
    Ok(())
}

fn parse_query(query: &str) -> Vec<(String, String)> {
    // `+`-as-space is a form-encoding convention and applies only here,
    // not in path segments.
    let decode = |s: &str| percent_decode(s, true);
    query
        .split('&')
        .filter(|s| !s.is_empty())
        .map(|pair| match pair.split_once('=') {
            Some((k, v)) => (decode(k), decode(v)),
            None => (decode(pair), String::new()),
        })
        .collect()
}

/// Decodes `%XX` escapes (and optionally `+`-as-space); invalid escapes
/// pass through literally (the router will simply not match them).
fn percent_decode(text: &str, plus_as_space: bool) -> String {
    let bytes = text.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' => {
                let hex = bytes.get(i + 1..i + 3).and_then(|h| {
                    std::str::from_utf8(h)
                        .ok()
                        .and_then(|h| u8::from_str_radix(h, 16).ok())
                });
                match hex {
                    Some(b) => {
                        out.push(b);
                        i += 3;
                    }
                    None => {
                        out.push(b'%');
                        i += 1;
                    }
                }
            }
            b'+' if plus_as_space => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// An HTTP response about to be written.
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code (200, 404, …).
    pub status: u16,
    /// Response body; the server always sends `application/json`.
    pub body: String,
}

impl Response {
    /// A JSON response with the given status.
    pub fn json(status: u16, body: impl Into<String>) -> Response {
        Response {
            status,
            body: body.into(),
        }
    }

    /// Serializes status line, headers, and body to `out`.
    pub fn write_to(&self, mut out: impl Write) -> io::Result<()> {
        write!(
            out,
            "HTTP/1.1 {} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
            self.status,
            reason(self.status),
            self.body.len(),
            self.body
        )?;
        out.flush()
    }
}

/// Canonical reason phrases for the statuses the protocol documents.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        201 => "Created",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(raw: &str) -> Result<Request, ParseError> {
        read_request(raw.as_bytes(), 1024)
    }

    #[test]
    fn parses_get_with_query() {
        let req =
            parse("GET /sessions/alice/diff?from=0&to=2 HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/sessions/alice/diff");
        assert_eq!(req.query_param("from"), Some("0"));
        assert_eq!(req.query_param("to"), Some("2"));
        assert_eq!(req.segments(), vec!["sessions", "alice", "diff"]);
        assert!(req.body.is_empty());
    }

    #[test]
    fn parses_post_with_body() {
        let body = r#"{"name":"alice"}"#;
        let raw = format!(
            "POST /sessions HTTP/1.1\r\nContent-Length: {}\r\n\r\n{}",
            body.len(),
            body
        );
        let req = parse(&raw).unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.body, body);
    }

    #[test]
    fn rejects_oversized_bodies_without_reading_them() {
        let raw = "POST /sessions HTTP/1.1\r\nContent-Length: 999999\r\n\r\n";
        match parse(raw) {
            Err(ParseError::BodyTooLarge { declared, limit }) => {
                assert_eq!(declared, 999999);
                assert_eq!(limit, 1024);
            }
            other => panic!("expected BodyTooLarge, got {other:?}"),
        }
    }

    #[test]
    fn rejects_garbage_and_truncation() {
        assert!(matches!(
            parse("NOT-HTTP\r\n\r\n"),
            Err(ParseError::Malformed(_))
        ));
        assert!(matches!(
            parse("GET /x HTTP/1.1\r\nContent-Length: ten\r\n\r\n"),
            Err(ParseError::Malformed(_))
        ));
        assert!(matches!(
            parse("POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort"),
            Err(ParseError::Malformed(_))
        ));
        assert!(matches!(parse(""), Err(ParseError::Closed)));
    }

    #[test]
    fn decodes_percent_escapes_per_segment() {
        let req = parse("GET /sessions/an%20alyst HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(req.path, "/sessions/an%20alyst", "path stays raw");
        assert_eq!(req.segments(), vec!["sessions", "an alyst"]);
        // %2F decodes *inside* a segment instead of splitting routing,
        // and `+` is literal in paths (space only in query strings).
        let req = parse("GET /sessions/a%2Fb+c?q=x+y HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(req.segments(), vec!["sessions", "a/b+c"]);
        assert_eq!(req.query_param("q"), Some("x y"));
    }

    #[test]
    fn response_wire_format() {
        let mut out = Vec::new();
        Response::json(404, "{\"error\":\"x\"}")
            .write_to(&mut out)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 404 Not Found\r\n"));
        assert!(text.contains("Content-Length: 13\r\n"));
        assert!(text.ends_with("\r\n\r\n{\"error\":\"x\"}"));
    }
}
