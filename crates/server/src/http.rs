//! Hand-rolled HTTP/1.1 request parsing and response writing.
//!
//! The offline build environment has no network crates, so — exactly like
//! the dependency shims stand in for external APIs — this module
//! implements the minimal slice of HTTP/1.1 the front end needs:
//! persistent connections ([`RequestReader`] parses a sequence of
//! requests off one stream, honoring `Connection: close`),
//! `Content-Length` bodies with a hard size cap, and plain status-line
//! responses. It is generic over `Read`/`Write`, so unit tests drive it
//! with in-memory buffers and the server with `TcpStream`s.
//!
//! Framing rules the keep-alive loop depends on (they are what makes
//! connection reuse safe rather than a request-smuggling vector):
//!
//! * Bodies are delimited by exactly one `Content-Length`. Duplicate
//!   headers with *differing* values are rejected as malformed — under
//!   `Connection: close` a parser picking either value is merely sloppy,
//!   but on a reused connection the two interpretations desynchronize
//!   the request boundary between peer and server.
//! * `Transfer-Encoding` is not implemented and is rejected outright
//!   rather than ignored, for the same reason.
//! * Read timeouts surface as [`ParseError::TimedOut`], distinguishing
//!   an idle keep-alive connection (no bytes of a next request yet —
//!   close silently) from a peer that stalled mid-request (answer `408`).

use std::io::{self, BufRead, BufReader, Read, Take, Write};

/// Upper bound on the request line plus headers, defending the reader
/// against unbounded header streams.
const MAX_HEAD_BYTES: usize = 16 * 1024;

/// A parsed HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Uppercased method (`GET`, `POST`, …).
    pub method: String,
    /// Raw (undecoded) path, without the query string. Percent-escapes
    /// decode per segment in [`Request::segments`], so a `%2F` inside a
    /// session name never splits routing.
    pub path: String,
    /// Query parameters in order of appearance.
    pub query: Vec<(String, String)>,
    /// Request body (empty when no `Content-Length` was sent).
    pub body: String,
    /// Whether the connection must close after this request: the client
    /// sent `Connection: close`, or spoke HTTP/1.0 without
    /// `Connection: keep-alive`.
    pub close: bool,
}

impl Request {
    /// First value of a query parameter.
    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Splits the path into non-empty segments (`/sessions/alice/edits`
    /// → `["sessions", "alice", "edits"]`), percent-decoding each
    /// segment after the split (`+` stays literal — the space
    /// convention is query-string-only).
    pub fn segments(&self) -> Vec<String> {
        self.path
            .split('/')
            .filter(|s| !s.is_empty())
            .map(|s| percent_decode(s, false))
            .collect()
    }
}

/// Why a request could not be parsed; each variant maps to one response
/// status.
#[derive(Debug)]
pub enum ParseError {
    /// Malformed request line, header, or framing → 400.
    Malformed(String),
    /// Body longer than the configured cap → 413.
    BodyTooLarge {
        /// The declared `Content-Length`.
        declared: usize,
        /// The configured cap.
        limit: usize,
    },
    /// The peer closed the connection before sending a request; not an
    /// error worth answering (browsers speculatively open connections).
    Closed,
    /// The stream's read timeout expired. `mid_request` distinguishes a
    /// peer that went quiet between requests (an idle keep-alive
    /// connection — close it silently) from one that stalled after
    /// sending part of a request (a slow or slowloris client → 408).
    TimedOut {
        /// Whether any bytes of the current request had arrived.
        mid_request: bool,
    },
    /// Transport failure while reading.
    Io(io::Error),
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::Malformed(msg) => write!(f, "malformed request: {msg}"),
            ParseError::BodyTooLarge { declared, limit } => {
                write!(
                    f,
                    "request body of {declared} bytes exceeds the {limit}-byte limit"
                )
            }
            ParseError::Closed => f.write_str("connection closed before a request arrived"),
            ParseError::TimedOut { mid_request: true } => {
                f.write_str("timed out mid-request waiting for the rest of it")
            }
            ParseError::TimedOut { mid_request: false } => {
                f.write_str("idle connection timed out between requests")
            }
            ParseError::Io(err) => write!(f, "i/o error: {err}"),
        }
    }
}

/// Whether an I/O error kind is a read-timeout expiry. `SO_RCVTIMEO`
/// surfaces as `WouldBlock` on Unix and `TimedOut` on Windows.
fn is_timeout(kind: io::ErrorKind) -> bool {
    matches!(kind, io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut)
}

/// Parses a sequence of requests off one stream — the per-connection
/// reader behind the server's keep-alive loop.
///
/// The reader owns the connection's buffer, which is what makes
/// persistence correct: bytes the kernel delivered beyond the current
/// request (a pipelined next request) stay buffered here and are parsed
/// by the next [`RequestReader::read`] call instead of being dropped.
/// The underlying stream is wrapped in a [`Take`] whose limit is reset
/// per request, bounding how much one request can pull off the wire
/// even when no newline ever arrives.
#[derive(Debug)]
pub struct RequestReader<S: Read> {
    reader: BufReader<Take<S>>,
    max_body_bytes: usize,
}

impl<S: Read> RequestReader<S> {
    /// Wraps `stream`, enforcing `max_body_bytes` per request.
    pub fn new(stream: S, max_body_bytes: usize) -> RequestReader<S> {
        let limit = (MAX_HEAD_BYTES + max_body_bytes) as u64;
        RequestReader {
            reader: BufReader::new(stream.take(limit)),
            max_body_bytes,
        }
    }

    /// Reads and parses the next request off the stream.
    pub fn read(&mut self) -> Result<Request, ParseError> {
        self.reader
            .get_mut()
            .set_limit((MAX_HEAD_BYTES + self.max_body_bytes) as u64);
        parse_one(&mut self.reader, self.max_body_bytes)
    }
}

/// Reads and parses one request from `stream`, enforcing `max_body_bytes`
/// (the single-request entry point; connection loops use [`RequestReader`]).
pub fn read_request(stream: impl Read, max_body_bytes: usize) -> Result<Request, ParseError> {
    RequestReader::new(stream, max_body_bytes).read()
}

fn parse_one(reader: &mut impl BufRead, max_body_bytes: usize) -> Result<Request, ParseError> {
    let mut line = String::new();
    if let Err(err) = read_line(reader, &mut line) {
        // A timeout on the request line with nothing buffered is an idle
        // keep-alive connection, not a stalled request.
        if let ParseError::Io(io_err) = &err {
            if is_timeout(io_err.kind()) {
                return Err(ParseError::TimedOut {
                    mid_request: !line.is_empty(),
                });
            }
        }
        return Err(err);
    }
    if line.is_empty() {
        return Err(ParseError::Closed);
    }
    let mut parts = line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| ParseError::Malformed("empty request line".into()))?
        .to_ascii_uppercase();
    let target = parts
        .next()
        .ok_or_else(|| ParseError::Malformed("request line has no path".into()))?;
    let http_10 = match parts.next() {
        Some("HTTP/1.0") => true,
        Some(v) if v.starts_with("HTTP/1.") => false,
        _ => return Err(ParseError::Malformed("expected an HTTP/1.x version".into())),
    };

    let mut content_length: Option<usize> = None;
    let mut keep_alive_token = false;
    let mut close_token = false;
    let mut head_bytes = line.len();
    loop {
        let mut header = String::new();
        read_line(reader, &mut header).map_err(|err| match err {
            ParseError::Io(io_err) if is_timeout(io_err.kind()) => {
                ParseError::TimedOut { mid_request: true }
            }
            other => other,
        })?;
        head_bytes += header.len() + 2;
        if head_bytes > MAX_HEAD_BYTES {
            return Err(ParseError::Malformed("headers too large".into()));
        }
        if header.is_empty() {
            break;
        }
        let Some((name, value)) = header.split_once(':') else {
            return Err(ParseError::Malformed(format!(
                "header without colon: `{header}`"
            )));
        };
        let name = name.trim();
        if name.eq_ignore_ascii_case("content-length") {
            let declared: usize = value
                .trim()
                .parse()
                .map_err(|_| ParseError::Malformed("unreadable Content-Length".into()))?;
            // Identical duplicates collapse; conflicting ones would let
            // the peer and the server frame the body differently — fatal
            // on a reused connection (request smuggling), so reject.
            if content_length.is_some_and(|seen| seen != declared) {
                return Err(ParseError::Malformed(
                    "conflicting Content-Length headers".into(),
                ));
            }
            content_length = Some(declared);
        } else if name.eq_ignore_ascii_case("transfer-encoding") {
            return Err(ParseError::Malformed(
                "Transfer-Encoding is not supported; send a Content-Length body".into(),
            ));
        } else if name.eq_ignore_ascii_case("connection") {
            for token in value.split(',') {
                let token = token.trim();
                if token.eq_ignore_ascii_case("close") {
                    close_token = true;
                } else if token.eq_ignore_ascii_case("keep-alive") {
                    keep_alive_token = true;
                }
            }
        }
    }
    let content_length = content_length.unwrap_or(0);

    if content_length > max_body_bytes {
        return Err(ParseError::BodyTooLarge {
            declared: content_length,
            limit: max_body_bytes,
        });
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).map_err(|err| {
        if err.kind() == io::ErrorKind::UnexpectedEof {
            ParseError::Malformed("body shorter than Content-Length".into())
        } else if is_timeout(err.kind()) {
            ParseError::TimedOut { mid_request: true }
        } else {
            ParseError::Io(err)
        }
    })?;
    let body =
        String::from_utf8(body).map_err(|_| ParseError::Malformed("body is not UTF-8".into()))?;

    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, parse_query(q)),
        None => (target, Vec::new()),
    };
    Ok(Request {
        method,
        path: path.to_string(),
        query,
        body,
        close: close_token || (http_10 && !keep_alive_token),
    })
}

/// Reads one CRLF- (or LF-) terminated line, stripping the terminator.
/// On error, bytes read before the failure remain in `out` (the timeout
/// classification above depends on this).
fn read_line(reader: &mut impl BufRead, out: &mut String) -> Result<(), ParseError> {
    reader.read_line(out).map_err(|err| {
        if err.kind() == io::ErrorKind::InvalidData {
            ParseError::Malformed("header line is not UTF-8".into())
        } else {
            ParseError::Io(err)
        }
    })?;
    while out.ends_with('\n') || out.ends_with('\r') {
        out.pop();
    }
    Ok(())
}

fn parse_query(query: &str) -> Vec<(String, String)> {
    // `+`-as-space is a form-encoding convention and applies only here,
    // not in path segments.
    let decode = |s: &str| percent_decode(s, true);
    query
        .split('&')
        .filter(|s| !s.is_empty())
        .map(|pair| match pair.split_once('=') {
            Some((k, v)) => (decode(k), decode(v)),
            None => (decode(pair), String::new()),
        })
        .collect()
}

/// Decodes `%XX` escapes (and optionally `+`-as-space); invalid escapes
/// pass through literally (the router will simply not match them).
fn percent_decode(text: &str, plus_as_space: bool) -> String {
    let bytes = text.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' => {
                let hex = bytes.get(i + 1..i + 3).and_then(|h| {
                    std::str::from_utf8(h)
                        .ok()
                        .and_then(|h| u8::from_str_radix(h, 16).ok())
                });
                match hex {
                    Some(b) => {
                        out.push(b);
                        i += 3;
                    }
                    None => {
                        out.push(b'%');
                        i += 1;
                    }
                }
            }
            b'+' if plus_as_space => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// An HTTP response about to be written.
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code (200, 404, …).
    pub status: u16,
    /// Response body; the server always sends `application/json`.
    pub body: String,
}

impl Response {
    /// A JSON response with the given status.
    pub fn json(status: u16, body: impl Into<String>) -> Response {
        Response {
            status,
            body: body.into(),
        }
    }

    /// Serializes status line, headers, and body to `out`, announcing
    /// whether the connection stays open. The `Content-Length` is always
    /// exact — it is the response framing keep-alive clients rely on.
    pub fn write_with(&self, mut out: impl Write, keep_alive: bool) -> io::Result<()> {
        // Serialize into one buffer and emit a single write: streaming the
        // format fragments straight into an unbuffered socket produces a
        // burst of tiny segments, and on a keep-alive connection Nagle
        // holds the last one until the peer's delayed ACK (~40ms stall).
        let message = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: {}\r\n\r\n{}",
            self.status,
            reason(self.status),
            self.body.len(),
            if keep_alive { "keep-alive" } else { "close" },
            self.body
        );
        out.write_all(message.as_bytes())?;
        out.flush()
    }

    /// Serializes status line, headers, and body to `out` with
    /// `Connection: close` (the one-shot path).
    pub fn write_to(&self, out: impl Write) -> io::Result<()> {
        self.write_with(out, false)
    }
}

/// Canonical reason phrases for the statuses the protocol documents.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        201 => "Created",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        409 => "Conflict",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(raw: &str) -> Result<Request, ParseError> {
        read_request(raw.as_bytes(), 1024)
    }

    #[test]
    fn parses_get_with_query() {
        let req =
            parse("GET /sessions/alice/diff?from=0&to=2 HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/sessions/alice/diff");
        assert_eq!(req.query_param("from"), Some("0"));
        assert_eq!(req.query_param("to"), Some("2"));
        assert_eq!(req.segments(), vec!["sessions", "alice", "diff"]);
        assert!(req.body.is_empty());
        assert!(!req.close, "HTTP/1.1 defaults to keep-alive");
    }

    #[test]
    fn parses_post_with_body() {
        let body = r#"{"name":"alice"}"#;
        let raw = format!(
            "POST /sessions HTTP/1.1\r\nContent-Length: {}\r\n\r\n{}",
            body.len(),
            body
        );
        let req = parse(&raw).unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.body, body);
    }

    #[test]
    fn connection_semantics_per_version_and_header() {
        // HTTP/1.1: keep-alive unless `close` is sent.
        assert!(!parse("GET /x HTTP/1.1\r\n\r\n").unwrap().close);
        assert!(
            parse("GET /x HTTP/1.1\r\nConnection: close\r\n\r\n")
                .unwrap()
                .close
        );
        // Token lists and case-insensitivity.
        assert!(
            parse("GET /x HTTP/1.1\r\nConnection: Keep-Alive, Close\r\n\r\n")
                .unwrap()
                .close
        );
        // HTTP/1.0: close unless `keep-alive` is sent.
        assert!(parse("GET /x HTTP/1.0\r\n\r\n").unwrap().close);
        assert!(
            !parse("GET /x HTTP/1.0\r\nConnection: keep-alive\r\n\r\n")
                .unwrap()
                .close
        );
    }

    #[test]
    fn conflicting_content_lengths_are_malformed() {
        // Differing duplicates are a request-smuggling vector under
        // keep-alive: the parser must not silently pick either value.
        let raw = "POST /x HTTP/1.1\r\nContent-Length: 3\r\nContent-Length: 5\r\n\r\nabcde";
        match parse(raw) {
            Err(ParseError::Malformed(msg)) => {
                assert!(msg.contains("Content-Length"), "{msg}");
            }
            other => panic!("expected Malformed, got {other:?}"),
        }
        // Identical duplicates collapse to one.
        let raw = "POST /x HTTP/1.1\r\nContent-Length: 3\r\nContent-Length: 3\r\n\r\nabc";
        assert_eq!(parse(raw).unwrap().body, "abc");
    }

    #[test]
    fn transfer_encoding_is_rejected() {
        let raw = "POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n0\r\n\r\n";
        assert!(matches!(parse(raw), Err(ParseError::Malformed(_))));
    }

    #[test]
    fn reader_parses_pipelined_requests_off_one_stream() {
        let raw = "GET /a HTTP/1.1\r\n\r\nPOST /b HTTP/1.1\r\nContent-Length: 2\r\n\r\nhi\
                   GET /c HTTP/1.1\r\nConnection: close\r\n\r\n";
        let mut reader = RequestReader::new(raw.as_bytes(), 1024);
        let a = reader.read().unwrap();
        assert_eq!((a.path.as_str(), a.close), ("/a", false));
        let b = reader.read().unwrap();
        assert_eq!((b.path.as_str(), b.body.as_str()), ("/b", "hi"));
        let c = reader.read().unwrap();
        assert_eq!((c.path.as_str(), c.close), ("/c", true));
        assert!(matches!(reader.read(), Err(ParseError::Closed)));
    }

    #[test]
    fn rejects_oversized_bodies_without_reading_them() {
        let raw = "POST /sessions HTTP/1.1\r\nContent-Length: 999999\r\n\r\n";
        match parse(raw) {
            Err(ParseError::BodyTooLarge { declared, limit }) => {
                assert_eq!(declared, 999999);
                assert_eq!(limit, 1024);
            }
            other => panic!("expected BodyTooLarge, got {other:?}"),
        }
    }

    #[test]
    fn rejects_garbage_and_truncation() {
        assert!(matches!(
            parse("NOT-HTTP\r\n\r\n"),
            Err(ParseError::Malformed(_))
        ));
        assert!(matches!(
            parse("GET /x HTTP/1.1\r\nContent-Length: ten\r\n\r\n"),
            Err(ParseError::Malformed(_))
        ));
        assert!(matches!(
            parse("POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort"),
            Err(ParseError::Malformed(_))
        ));
        assert!(matches!(parse(""), Err(ParseError::Closed)));
    }

    /// A reader that yields its script, then fails like an expired
    /// `SO_RCVTIMEO` read forever after.
    struct StallingStream<'a> {
        data: &'a [u8],
    }

    impl Read for StallingStream<'_> {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            if self.data.is_empty() {
                return Err(io::Error::new(io::ErrorKind::WouldBlock, "timed out"));
            }
            let n = self.data.len().min(buf.len());
            buf[..n].copy_from_slice(&self.data[..n]);
            self.data = &self.data[n..];
            Ok(n)
        }
    }

    #[test]
    fn timeout_classification_idle_vs_mid_request() {
        // Nothing arrived: an idle keep-alive connection.
        let mut reader = RequestReader::new(StallingStream { data: b"" }, 1024);
        assert!(matches!(
            reader.read(),
            Err(ParseError::TimedOut { mid_request: false })
        ));
        // Half a request line: a stalled (slowloris) client.
        let mut reader = RequestReader::new(StallingStream { data: b"GET /hea" }, 1024);
        assert!(matches!(
            reader.read(),
            Err(ParseError::TimedOut { mid_request: true })
        ));
        // Headers arrived, body stalled.
        let mut reader = RequestReader::new(
            StallingStream {
                data: b"POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nhal",
            },
            1024,
        );
        assert!(matches!(
            reader.read(),
            Err(ParseError::TimedOut { mid_request: true })
        ));
    }

    #[test]
    fn decodes_percent_escapes_per_segment() {
        let req = parse("GET /sessions/an%20alyst HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(req.path, "/sessions/an%20alyst", "path stays raw");
        assert_eq!(req.segments(), vec!["sessions", "an alyst"]);
        // %2F decodes *inside* a segment instead of splitting routing,
        // and `+` is literal in paths (space only in query strings).
        let req = parse("GET /sessions/a%2Fb+c?q=x+y HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(req.segments(), vec!["sessions", "a/b+c"]);
        assert_eq!(req.query_param("q"), Some("x y"));
    }

    #[test]
    fn response_wire_format() {
        let mut out = Vec::new();
        Response::json(404, "{\"error\":\"x\"}")
            .write_to(&mut out)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 404 Not Found\r\n"));
        assert!(text.contains("Content-Length: 13\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.ends_with("\r\n\r\n{\"error\":\"x\"}"));

        let mut out = Vec::new();
        Response::json(200, "{}")
            .write_with(&mut out, true)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("Connection: keep-alive\r\n"));
    }
}
