//! The TCP front end: a `std::net::TcpListener` accept loop feeding a
//! bounded worker pool of persistent-connection handlers.
//!
//! Design points, in order of importance:
//!
//! * **Keep-alive** — a worker owns a connection for its whole life and
//!   serves a bounded sequence of requests off it (HTTP/1.1 persistent
//!   connections, `Connection: close` honored). An analyst's
//!   edit→iterate loop reuses one connection instead of paying a TCP
//!   handshake per request.
//! * **Timeouts** — every accepted stream gets read/write timeouts the
//!   moment a worker dequeues it. An idle keep-alive connection is
//!   closed silently when the read timeout expires; a peer that stalls
//!   *mid-request* (the slowloris pattern) is answered `408` and
//!   dropped. Either way a stalled client occupies a worker for at most
//!   one timeout, never forever.
//! * **Backpressure** — connections queue into a `sync_channel` bounded
//!   at [`ServerConfig::queue_depth`]. When every worker is busy and the
//!   queue is full, new connections are handed to a single long-lived
//!   shedder thread that answers `503` — deterministic shedding without
//!   spawning a thread per shed connection (a sustained burst would
//!   otherwise create unbounded threads). If even the shedder's small
//!   queue overflows, the connection is dropped outright; both outcomes
//!   are counted in [`ServerStats`].
//! * **Session eviction** — with [`ServerConfig::session_ttl`] set, a
//!   housekeeping thread evicts sessions idle past the TTL through
//!   [`SessionManager::evict_idle`](helix_core::SessionManager::evict_idle),
//!   so abandoned analysts cannot pin session state forever.
//! * **Graceful shutdown** — [`ServerHandle::shutdown`] flips an atomic
//!   flag, wakes the accept loop with a loopback connection, drops the
//!   queue senders, and joins every thread; requests already dequeued
//!   finish and flush before their worker exits.
//! * **Isolation** — a worker that fails to write a response just logs
//!   and moves on; a broken client cannot take a worker down.

use crate::http::{ParseError, RequestReader, Response};
use crate::routes::Api;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Tuning knobs for [`Server::bind`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads handling connections. Under keep-alive a worker is
    /// pinned by its connection until the peer closes, the idle timeout
    /// expires, or the per-connection request bound is hit, so this also
    /// caps concurrently persistent analysts; the default is 8.
    pub workers: usize,
    /// Hard cap on request body size; larger bodies are answered `413`
    /// without being read. Default 1 MiB.
    pub max_body_bytes: usize,
    /// Read timeout on accepted streams: the longest a worker waits for
    /// (the rest of) a request before giving the connection up. Default
    /// 5 s.
    pub read_timeout: Duration,
    /// Write timeout on accepted streams, so a peer that stops reading
    /// cannot wedge a worker mid-response. Default 5 s.
    pub write_timeout: Duration,
    /// Requests served over one connection before the server closes it
    /// (announced with `Connection: close`), bounding how long a single
    /// analyst can monopolize a worker. Default 256.
    pub max_requests_per_connection: usize,
    /// Accepted connections queued ahead of the workers before shedding
    /// begins. Default 16.
    pub queue_depth: usize,
    /// Shed connections queued for the `503` shedder thread before
    /// overflow connections are dropped without a response. Default 32.
    pub shed_queue_depth: usize,
    /// When set, sessions idle longer than this are evicted from the
    /// `SessionManager` by a housekeeping thread (touch-on-access: any
    /// routed request against a session resets its clock). Default
    /// `None` — sessions live until explicitly closed.
    pub session_ttl: Option<Duration>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 8,
            max_body_bytes: 1 << 20,
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
            max_requests_per_connection: 256,
            queue_depth: 16,
            shed_queue_depth: 32,
            session_ttl: None,
        }
    }
}

/// Monotonic serving counters, shared by the accept loop, the workers,
/// the shedder, and the eviction thread; readable through
/// [`ServerHandle::stats`] and served at `GET /stats`.
#[derive(Debug, Default)]
pub struct ServerStats {
    /// Connections dequeued by a worker.
    pub connections: AtomicU64,
    /// Requests parsed and routed.
    pub requests: AtomicU64,
    /// Connections answered `503` by the shedder.
    pub shed: AtomicU64,
    /// Connections dropped because even the shed queue was full.
    pub shed_dropped: AtomicU64,
    /// Sessions evicted by the idle-session housekeeping thread.
    pub sessions_evicted: AtomicU64,
}

/// A point-in-time copy of [`ServerStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Connections dequeued by a worker.
    pub connections: u64,
    /// Requests parsed and routed.
    pub requests: u64,
    /// Connections answered `503` by the shedder.
    pub shed: u64,
    /// Connections dropped because even the shed queue was full.
    pub shed_dropped: u64,
    /// Sessions evicted by the idle-session housekeeping thread.
    pub sessions_evicted: u64,
}

impl ServerStats {
    /// Copies every counter at once.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            connections: self.connections.load(Ordering::Relaxed),
            requests: self.requests.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            shed_dropped: self.shed_dropped.load(Ordering::Relaxed),
            sessions_evicted: self.sessions_evicted.load(Ordering::Relaxed),
        }
    }
}

/// A running server: accept thread + worker pool + shedder (+ optional
/// session evictor). Obtain one with [`Server::bind`]; stop it with
/// [`ServerHandle::shutdown`].
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    stop_signal: Arc<(Mutex<bool>, Condvar)>,
    stats: Arc<ServerStats>,
    accept_thread: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    shed_thread: Option<JoinHandle<()>>,
    evict_thread: Option<JoinHandle<()>>,
}

/// Namespace for [`Server::bind`].
#[derive(Debug)]
pub struct Server;

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral port), spawns the
    /// accept loop, worker pool, shedder, and (if configured) session
    /// evictor, and returns immediately.
    pub fn bind(
        addr: impl ToSocketAddrs,
        api: Api,
        config: ServerConfig,
    ) -> io::Result<ServerHandle> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let workers = config.workers.max(1);
        let stop = Arc::new(AtomicBool::new(false));
        let stop_signal = Arc::new((Mutex::new(false), Condvar::new()));
        let stats = Arc::new(ServerStats::default());
        let mut api = api;
        api.attach_server_stats(Arc::clone(&stats));
        let api = Arc::new(api);

        let (tx, rx) = sync_channel::<TcpStream>(config.queue_depth.max(1));
        let rx = Arc::new(Mutex::new(rx));
        let conn_config = ConnConfig {
            max_body_bytes: config.max_body_bytes,
            read_timeout: config.read_timeout,
            write_timeout: config.write_timeout,
            max_requests_per_connection: config.max_requests_per_connection.max(1),
        };
        let worker_threads = (0..workers)
            .map(|i| {
                let rx = Arc::clone(&rx);
                let api = Arc::clone(&api);
                let stats = Arc::clone(&stats);
                let conn_config = conn_config.clone();
                std::thread::Builder::new()
                    .name(format!("helix-serve-{i}"))
                    .spawn(move || worker_loop(&rx, &api, &conn_config, &stats))
                    .expect("spawn worker")
            })
            .collect();

        // One long-lived shedder drains overflow connections: bounded
        // threads under a sustained burst, unlike a thread per shed.
        let (shed_tx, shed_rx) = sync_channel::<TcpStream>(config.shed_queue_depth.max(1));
        let shed_thread = {
            let stats = Arc::clone(&stats);
            std::thread::Builder::new()
                .name("helix-shed".into())
                .spawn(move || shed_loop(&shed_rx, &stats))
                .expect("spawn shed loop")
        };

        let evict_thread = config.session_ttl.map(|ttl| {
            let api = Arc::clone(&api);
            let stats = Arc::clone(&stats);
            let signal = Arc::clone(&stop_signal);
            std::thread::Builder::new()
                .name("helix-evict".into())
                .spawn(move || evict_loop(&api, ttl, &signal, &stats))
                .expect("spawn evict loop")
        });

        let accept_stop = Arc::clone(&stop);
        let shed_stats = Arc::clone(&stats);
        let accept_thread = std::thread::Builder::new()
            .name("helix-accept".into())
            .spawn(move || accept_loop(&listener, &tx, &shed_tx, &accept_stop, &shed_stats))
            .expect("spawn accept loop");

        Ok(ServerHandle {
            addr,
            stop,
            stop_signal,
            stats,
            accept_thread: Some(accept_thread),
            workers: worker_threads,
            shed_thread: Some(shed_thread),
            evict_thread,
        })
    }
}

/// Per-connection handling parameters (the subset of [`ServerConfig`]
/// the workers need).
#[derive(Debug, Clone)]
struct ConnConfig {
    max_body_bytes: usize,
    read_timeout: Duration,
    write_timeout: Duration,
    max_requests_per_connection: usize,
}

fn accept_loop(
    listener: &TcpListener,
    tx: &SyncSender<TcpStream>,
    shed_tx: &SyncSender<TcpStream>,
    stop: &AtomicBool,
    stats: &ServerStats,
) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                // Persistent accept errors (EMFILE under fd exhaustion)
                // would otherwise busy-spin this loop at 100% CPU;
                // backing off briefly lets in-flight work release fds.
                std::thread::sleep(Duration::from_millis(10));
                continue;
            }
        };
        if stop.load(Ordering::SeqCst) {
            // The shutdown wake-up connection (or a late client); the
            // senders drop when this function returns, draining the
            // workers and the shedder.
            return;
        }
        match tx.try_send(stream) {
            Ok(()) => {}
            Err(TrySendError::Full(stream)) => {
                // Every worker busy and the queue full: shed load now
                // rather than queueing unbounded latency. The 503 write
                // (and the drain that keeps the close from RST-destroying
                // it) must not block the accept loop, so it is handed to
                // the single shedder thread; if even that queue is full,
                // the connection is dropped unanswered — bounded threads
                // beat a polite 503 under a burst that deep.
                match shed_tx.try_send(stream) {
                    Ok(()) => {}
                    Err(TrySendError::Full(stream)) => {
                        stats.shed_dropped.fetch_add(1, Ordering::Relaxed);
                        drop(stream);
                    }
                    Err(TrySendError::Disconnected(_)) => return,
                }
            }
            Err(TrySendError::Disconnected(_)) => return,
        }
    }
}

/// The shedder thread: answers each overflow connection with `503` and
/// a bounded drain. Exits when the accept loop drops its sender.
fn shed_loop(rx: &Receiver<TcpStream>, stats: &ServerStats) {
    while let Ok(stream) = rx.recv() {
        stats.shed.fetch_add(1, Ordering::Relaxed);
        shed_connection(&stream);
    }
}

/// Answers one shed connection with `503` and drains what the peer was
/// still sending (bounded in bytes and time) so the close cannot RST
/// the response out of the peer's receive buffer.
fn shed_connection(stream: &TcpStream) {
    let _ = stream.set_write_timeout(Some(Duration::from_millis(500)));
    let _ = stream.set_nodelay(true);
    let resp = Response::json(
        503,
        r#"{"error":"server at capacity, retry shortly","status":503}"#,
    );
    if resp.write_to(stream).is_err() {
        return;
    }
    let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
    let mut remainder = std::io::Read::take(stream, 64 * 1024);
    let _ = io::copy(&mut remainder, &mut io::sink());
}

/// The idle-session housekeeping thread: wakes every quarter TTL
/// (bounded to [50 ms, 1 s]) and evicts sessions idle past the TTL.
/// A condvar-backed stop signal lets shutdown interrupt the wait
/// immediately instead of sleeping it out.
fn evict_loop(api: &Api, ttl: Duration, signal: &(Mutex<bool>, Condvar), stats: &ServerStats) {
    let step = (ttl / 4).clamp(Duration::from_millis(50), Duration::from_secs(1));
    let (lock, condvar) = signal;
    loop {
        let mut stopped = lock
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        while !*stopped {
            let (guard, timeout) = condvar
                .wait_timeout(stopped, step)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            stopped = guard;
            if timeout.timed_out() {
                break;
            }
        }
        if *stopped {
            return;
        }
        drop(stopped);
        let evicted = api.manager().evict_idle(ttl);
        if !evicted.is_empty() {
            stats
                .sessions_evicted
                .fetch_add(evicted.len() as u64, Ordering::Relaxed);
        }
    }
}

fn worker_loop(
    rx: &Mutex<Receiver<TcpStream>>,
    api: &Api,
    config: &ConnConfig,
    stats: &ServerStats,
) {
    loop {
        // Hold the lock only for the dequeue; handling happens unlocked.
        let stream = {
            let rx = rx.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            rx.recv()
        };
        let Ok(stream) = stream else {
            return; // Sender dropped: shutdown.
        };
        handle_connection(stream, api, config, stats);
    }
}

/// Serves one connection to completion: a bounded keep-alive loop of
/// read → route → respond, with timeouts armed before the first read.
fn handle_connection(stream: TcpStream, api: &Api, config: &ConnConfig, stats: &ServerStats) {
    stats.connections.fetch_add(1, Ordering::Relaxed);
    // Arm the timeouts before touching the stream: without them an idle
    // or trickling client pins this worker for as long as it pleases.
    let _ = stream.set_read_timeout(Some(config.read_timeout));
    let _ = stream.set_write_timeout(Some(config.write_timeout));
    // Disable Nagle: responses are single small writes, and on a reused
    // connection the kernel would otherwise hold them for the peer's
    // delayed ACK — a ~40ms stall per keep-alive request.
    let _ = stream.set_nodelay(true);
    let mut reader = RequestReader::new(&stream, config.max_body_bytes);
    let mut served = 0usize;
    loop {
        let request = match reader.read() {
            Ok(request) => request,
            Err(ParseError::Closed) => return,
            Err(ParseError::TimedOut { mid_request: false }) => {
                // An idle keep-alive connection ran out its grace period;
                // closing it frees the worker for the queue.
                return;
            }
            Err(err) => {
                // An early reject (400/408/413) may leave request bytes
                // in flight. Closing now would RST the connection and can
                // destroy the response before the peer reads it, so after
                // answering, drain what the peer is still sending —
                // bounded in bytes and time — then close.
                let response = Api::parse_failure(&err);
                if response.write_with(&stream, false).is_ok() {
                    let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
                    let mut remainder =
                        std::io::Read::take(&stream, (config.max_body_bytes as u64) * 2);
                    let _ = io::copy(&mut remainder, &mut io::sink());
                }
                return;
            }
        };
        served += 1;
        stats.requests.fetch_add(1, Ordering::Relaxed);
        let close = request.close || served >= config.max_requests_per_connection;
        let response = api.handle(&request);
        if let Err(err) = response.write_with(&stream, !close) {
            // The client hung up mid-response; nothing to salvage.
            eprintln!("helix-server: failed to write response: {err}");
            return;
        }
        if close {
            return;
        }
    }
}

impl ServerHandle {
    /// The bound address (resolves the actual port when bound to port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// A snapshot of the serving counters (connections, requests, sheds,
    /// evictions) — what the load harness reads its shed rate from.
    pub fn stats(&self) -> StatsSnapshot {
        self.stats.snapshot()
    }

    /// Stops accepting, drains the worker pool, and joins every thread.
    /// In-flight requests complete; queued-but-unhandled connections are
    /// still served before the workers exit. Idempotent.
    pub fn shutdown(&mut self) {
        if self.accept_thread.is_none() {
            return;
        }
        self.stop.store(true, Ordering::SeqCst);
        {
            let (lock, condvar) = &*self.stop_signal;
            let mut stopped = lock
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            *stopped = true;
            condvar.notify_all();
        }
        // Wake the blocking accept() so the loop observes the flag.
        let _ = TcpStream::connect(self.addr);
        if let Some(accept) = self.accept_thread.take() {
            let _ = accept.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        if let Some(shed) = self.shed_thread.take() {
            let _ = shed.join();
        }
        if let Some(evict) = self.evict_thread.take() {
            let _ = evict.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}
