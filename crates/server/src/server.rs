//! The TCP front end: a `std::net::TcpListener` accept loop feeding a
//! bounded worker pool.
//!
//! Design points, in order of importance:
//!
//! * **Backpressure** — connections queue into a `sync_channel` bounded
//!   at `2 × workers`. When every worker is mid-iteration and the queue
//!   is full, new connections are answered `503` immediately instead of
//!   piling up unboundedly (an iteration can take seconds; an unbounded
//!   queue would turn a burst into minutes of invisible latency).
//! * **Graceful shutdown** — [`ServerHandle::shutdown`] flips an atomic
//!   flag, wakes the accept loop with a loopback connection, drops the
//!   queue sender, and joins every thread; requests already dequeued
//!   finish and flush before their worker exits.
//! * **Isolation** — each connection is one request (`Connection:
//!   close`), and a worker that fails to write a response just logs and
//!   moves on; a broken client cannot take a worker down.

use crate::http::{read_request, Response};
use crate::routes::Api;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// Tuning knobs for [`Server::bind`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads handling requests. Iterations run inside the
    /// engine's own scheduler pool, so a handful of workers serves many
    /// analysts; the default is 4.
    pub workers: usize,
    /// Hard cap on request body size; larger bodies are answered `413`
    /// without being read. Default 1 MiB.
    pub max_body_bytes: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 4,
            max_body_bytes: 1 << 20,
        }
    }
}

/// A running server: accept thread + worker pool. Obtain one with
/// [`Server::bind`]; stop it with [`ServerHandle::shutdown`].
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

/// Namespace for [`Server::bind`].
#[derive(Debug)]
pub struct Server;

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral port), spawns the
    /// accept loop and worker pool, and returns immediately.
    pub fn bind(
        addr: impl ToSocketAddrs,
        api: Api,
        config: ServerConfig,
    ) -> io::Result<ServerHandle> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let workers = config.workers.max(1);
        let stop = Arc::new(AtomicBool::new(false));
        let api = Arc::new(api);

        let (tx, rx) = sync_channel::<TcpStream>(workers * 2);
        let rx = Arc::new(Mutex::new(rx));
        let worker_threads = (0..workers)
            .map(|i| {
                let rx = Arc::clone(&rx);
                let api = Arc::clone(&api);
                let max_body = config.max_body_bytes;
                std::thread::Builder::new()
                    .name(format!("helix-serve-{i}"))
                    .spawn(move || worker_loop(&rx, &api, max_body))
                    .expect("spawn worker")
            })
            .collect();

        let accept_stop = Arc::clone(&stop);
        let accept_thread = std::thread::Builder::new()
            .name("helix-accept".into())
            .spawn(move || accept_loop(&listener, &tx, &accept_stop))
            .expect("spawn accept loop");

        Ok(ServerHandle {
            addr,
            stop,
            accept_thread: Some(accept_thread),
            workers: worker_threads,
        })
    }
}

fn accept_loop(listener: &TcpListener, tx: &SyncSender<TcpStream>, stop: &AtomicBool) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                // Persistent accept errors (EMFILE under fd exhaustion)
                // would otherwise busy-spin this loop at 100% CPU;
                // backing off briefly lets in-flight work release fds.
                std::thread::sleep(std::time::Duration::from_millis(10));
                continue;
            }
        };
        if stop.load(Ordering::SeqCst) {
            // The shutdown wake-up connection (or a late client); the
            // sender drops when this function returns, draining workers.
            return;
        }
        match tx.try_send(stream) {
            Ok(()) => {}
            Err(TrySendError::Full(stream)) => {
                // Every worker busy and the queue full: shed load now
                // rather than queueing unbounded latency. Shedding must
                // not block the accept loop, so the 503 (and the drain
                // that keeps the close from RST-destroying it — same
                // hazard as the 413 path) runs on a detached thread.
                let spawned = std::thread::Builder::new()
                    .name("helix-shed".into())
                    .spawn(move || shed_connection(&stream));
                if let Err(err) = spawned {
                    eprintln!("helix-server: failed to spawn shed thread: {err}");
                }
            }
            Err(TrySendError::Disconnected(_)) => return,
        }
    }
}

/// Answers one shed connection with `503` and drains what the peer was
/// still sending (bounded in bytes and time) so the close cannot RST
/// the response out of the peer's receive buffer.
fn shed_connection(stream: &TcpStream) {
    let resp = Response::json(
        503,
        r#"{"error":"server at capacity, retry shortly","status":503}"#,
    );
    if resp.write_to(stream).is_err() {
        return;
    }
    let _ = stream.set_read_timeout(Some(std::time::Duration::from_millis(500)));
    let mut remainder = std::io::Read::take(stream, 64 * 1024);
    let _ = io::copy(&mut remainder, &mut io::sink());
}

fn worker_loop(rx: &Mutex<Receiver<TcpStream>>, api: &Api, max_body_bytes: usize) {
    loop {
        // Hold the lock only for the dequeue; handling happens unlocked.
        let stream = {
            let rx = rx.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            rx.recv()
        };
        let Ok(stream) = stream else {
            return; // Sender dropped: shutdown.
        };
        handle_connection(stream, api, max_body_bytes);
    }
}

fn handle_connection(stream: TcpStream, api: &Api, max_body_bytes: usize) {
    let (response, rejected_early) = match read_request(&stream, max_body_bytes) {
        Ok(request) => (api.handle(&request), false),
        Err(crate::http::ParseError::Closed) => return,
        Err(err) => (Api::parse_failure(&err), true),
    };
    if let Err(err) = response.write_to(&stream) {
        // The client hung up mid-response; nothing to salvage.
        eprintln!("helix-server: failed to write response: {err}");
        return;
    }
    if rejected_early {
        // An early reject (413/400) leaves the request body in flight.
        // Closing now would RST the connection and can destroy the
        // response before the peer reads it, so drain what the peer is
        // still sending — bounded in bytes and time.
        let _ = stream.set_read_timeout(Some(std::time::Duration::from_millis(500)));
        let mut remainder = std::io::Read::take(&stream, (max_body_bytes as u64) * 2);
        let _ = io::copy(&mut remainder, &mut io::sink());
    }
}

impl ServerHandle {
    /// The bound address (resolves the actual port when bound to port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, drains the worker pool, and joins every thread.
    /// In-flight requests complete; queued-but-unhandled connections are
    /// still served before the workers exit. Idempotent.
    pub fn shutdown(&mut self) {
        if self.accept_thread.is_none() {
            return;
        }
        self.stop.store(true, Ordering::SeqCst);
        // Wake the blocking accept() so the loop observes the flag.
        let _ = TcpStream::connect(self.addr);
        if let Some(accept) = self.accept_thread.take() {
            let _ = accept.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}
