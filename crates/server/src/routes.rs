//! Request routing: maps parsed HTTP requests onto [`SessionManager`]
//! operations and renders JSON responses.
//!
//! This layer is transport-free — it consumes an already-parsed
//! [`Request`] and produces a [`Response`] — so every endpoint and error
//! mapping is unit-testable without sockets. The error contract (also in
//! `docs/API.md`):
//!
//! | condition                                   | status |
//! |---------------------------------------------|--------|
//! | malformed JSON / unknown edit kind / bad ref| 400    |
//! | unknown session, route, version, template   | 404    |
//! | wrong method on a known route               | 405    |
//! | session name already registered             | 409    |
//! | request body over the configured cap        | 413    |
//! | workflow fails to compile or execute        | 500    |

use crate::http::{ParseError, Request, Response};
use crate::json::Json;
use crate::server::ServerStats;
use crate::wire;
use helix_core::{HelixError, SessionHandle, SessionManager, Workflow};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Builds workflows by name for `POST /sessions`. Arbitrary DAGs cannot
/// cross the wire (operators hold closures), so the deployment registers
/// the programs its analysts iterate on — the paper's model, where the
/// DSL program lives with the system and the human turns its knobs.
#[derive(Default)]
pub struct WorkflowRegistry {
    builders: BTreeMap<String, Box<dyn Fn() -> helix_core::Result<Workflow> + Send + Sync>>,
}

impl std::fmt::Debug for WorkflowRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkflowRegistry")
            .field("templates", &self.names())
            .finish()
    }
}

impl WorkflowRegistry {
    /// An empty registry.
    pub fn new() -> WorkflowRegistry {
        WorkflowRegistry::default()
    }

    /// Registers (or replaces) a named workflow template.
    pub fn register(
        &mut self,
        name: impl Into<String>,
        build: impl Fn() -> helix_core::Result<Workflow> + Send + Sync + 'static,
    ) {
        self.builders.insert(name.into(), Box::new(build));
    }

    /// Builds a fresh workflow from a template.
    pub fn build(&self, name: &str) -> Option<helix_core::Result<Workflow>> {
        self.builders.get(name).map(|b| b())
    }

    /// Registered template names, sorted.
    pub fn names(&self) -> Vec<String> {
        self.builders.keys().cloned().collect()
    }
}

/// The HTTP API over one engine: a session manager plus the workflow
/// registry. [`Api::handle`] is pure request→response; the server module
/// wires it to sockets.
#[derive(Debug)]
pub struct Api {
    manager: Arc<SessionManager>,
    registry: WorkflowRegistry,
    server_stats: Option<Arc<ServerStats>>,
}

/// Maps an engine error to the documented status code: bad references
/// and invalid edits are the caller's fault (400), everything that
/// failed while executing a valid request is the server's (500).
pub fn status_for(err: &HelixError) -> u16 {
    match err {
        HelixError::Workflow(_) | HelixError::Compile(_) => 400,
        HelixError::Exec(_)
        | HelixError::Store(_)
        | HelixError::Dataflow(_)
        | HelixError::Ml(_)
        | HelixError::Io(_) => 500,
    }
}

fn error_body(status: u16, message: impl Into<String>) -> Response {
    let body = Json::obj([
        ("error", Json::str(message.into())),
        ("status", Json::Num(status as f64)),
    ]);
    Response::json(status, body.to_string())
}

fn engine_error(err: HelixError) -> Response {
    error_body(status_for(&err), err.to_string())
}

fn ok(body: Json) -> Response {
    Response::json(200, body.to_string())
}

impl Api {
    /// An API over `manager`, creating sessions from `registry`.
    pub fn new(manager: Arc<SessionManager>, registry: WorkflowRegistry) -> Api {
        Api {
            manager,
            registry,
            server_stats: None,
        }
    }

    /// The underlying session manager.
    pub fn manager(&self) -> &Arc<SessionManager> {
        &self.manager
    }

    /// Wires in the serving counters so `GET /stats` can report them.
    /// Called by `Server::bind`; an API without stats (unit tests, the
    /// in-process path) answers `/stats` with zeros.
    pub fn attach_server_stats(&mut self, stats: Arc<ServerStats>) {
        self.server_stats = Some(stats);
    }

    /// Recovers durable sessions from the engine's store directory,
    /// rebuilding each one's template workflow from this API's registry.
    /// Call once after construction, before serving; returns the number
    /// of sessions brought back (always 0 on a volatile engine).
    pub fn recover_sessions(&self) -> usize {
        self.manager
            .recover(|template| self.registry.build(template).and_then(Result::ok))
    }

    /// Renders the response for one request-parse failure.
    pub fn parse_failure(err: &ParseError) -> Response {
        match err {
            ParseError::BodyTooLarge { .. } => error_body(413, err.to_string()),
            ParseError::TimedOut { .. } => error_body(408, err.to_string()),
            _ => error_body(400, err.to_string()),
        }
    }

    /// Routes one request. Never panics; anything unroutable becomes a
    /// JSON error response.
    pub fn handle(&self, req: &Request) -> Response {
        let segments = req.segments();
        let segments: Vec<&str> = segments.iter().map(String::as_str).collect();
        match (req.method.as_str(), segments.as_slice()) {
            ("GET", ["healthz"]) => ok(Json::obj([("status", Json::str("ok"))])),
            ("GET", ["workflows"]) => ok(Json::obj([(
                "workflows",
                Json::Arr(self.registry.names().iter().map(Json::str).collect()),
            )])),
            ("GET", ["stats"]) => self.stats(),
            ("GET", ["sessions"]) => self.list_sessions(),
            ("POST", ["sessions"]) => self.create_session(&req.body),
            ("GET", ["sessions", name]) => self.with_session(name, |s| Ok(self.session_info(s))),
            ("DELETE", ["sessions", name]) => self.close_session(name),
            ("POST", ["sessions", name, "edits"]) => self.apply_edit(name, &req.body),
            ("POST", ["sessions", name, "iterate"]) => self.iterate(name),
            ("POST", ["sessions", name, "data"]) => self.append_data(name, &req.body),
            ("GET", ["sessions", name, "uncertain"]) => self.uncertain(name, req),
            ("PUT", ["sessions", name, "workflow"]) => self.replace_workflow(name, &req.body),
            ("GET", ["sessions", name, "versions"]) => self.versions(name),
            ("GET", ["sessions", name, "versions", id]) => self.version_detail(name, id),
            ("GET", ["sessions", name, "diff"]) => self.diff(name, req),
            ("GET", ["versions"]) => self.global_versions(),
            ("POST", ["admin", "snapshot"]) => self.admin_snapshot(),
            ("POST", ["admin", "optimize"]) => self.admin_optimize(),
            (_, ["admin", "snapshot" | "optimize"])
            | (_, ["healthz" | "workflows" | "versions" | "sessions" | "stats"])
            | (_, ["sessions", _])
            | (
                _,
                ["sessions", _, "edits" | "iterate" | "workflow" | "versions" | "diff" | "data" | "uncertain"],
            )
            | (_, ["sessions", _, "versions", _]) => error_body(
                405,
                format!("method {} not allowed on {}", req.method, req.path),
            ),
            _ => error_body(404, format!("no route for {}", req.path)),
        }
    }

    fn with_session(
        &self,
        name: &str,
        f: impl FnOnce(&SessionHandle) -> Result<Response, HelixError>,
    ) -> Response {
        match self.manager.get(name) {
            Some(session) => f(&session).unwrap_or_else(engine_error),
            None => error_body(404, format!("unknown session `{name}`")),
        }
    }

    fn session_info(&self, session: &SessionHandle) -> Response {
        let (iterations, pending, nodes) = session.with(|s| {
            (
                s.iteration(),
                s.pending_edits().len(),
                s.workflow()
                    .nodes()
                    .iter()
                    .map(|n| n.name.clone())
                    .collect::<Vec<_>>(),
            )
        });
        ok(Json::obj([
            ("name", Json::str(session.name())),
            ("iterations", Json::Num(iterations as f64)),
            ("pending_edits", Json::Num(pending as f64)),
            ("nodes", Json::Arr(nodes.iter().map(Json::str).collect())),
        ]))
    }

    fn list_sessions(&self) -> Response {
        let sessions = self
            .manager
            .names()
            .into_iter()
            .map(|name| {
                let iterations = self.manager.get(&name).map(|s| s.iteration()).unwrap_or(0);
                Json::obj([
                    ("name", Json::str(name)),
                    ("iterations", Json::Num(iterations as f64)),
                ])
            })
            .collect();
        ok(Json::obj([("sessions", Json::Arr(sessions))]))
    }

    /// Resolves the request's `workflow` field to a freshly built
    /// workflow, returning the template name alongside it so callers can
    /// record the session's provenance for durable recovery.
    fn build_workflow(&self, body: &Json) -> Result<(String, Workflow), Response> {
        let Some(template) = body.get("workflow").and_then(Json::as_str) else {
            return Err(error_body(400, "missing or non-string field `workflow`"));
        };
        match self.registry.build(template) {
            None => Err(error_body(
                404,
                format!(
                    "unknown workflow template `{template}` (registered: {})",
                    self.registry.names().join(", ")
                ),
            )),
            Some(Err(err)) => Err(engine_error(err)),
            Some(Ok(workflow)) => Ok((template.to_string(), workflow)),
        }
    }

    fn create_session(&self, body: &str) -> Response {
        let body = match Json::parse(body) {
            Ok(v) => v,
            Err(err) => return error_body(400, err.to_string()),
        };
        let Some(name) = body.get("name").and_then(Json::as_str) else {
            return error_body(400, "missing or non-string field `name`");
        };
        let (template, workflow) = match self.build_workflow(&body) {
            Ok(built) => built,
            Err(resp) => return resp,
        };
        match self
            .manager
            .create_with_template(name, workflow, Some(&template))
        {
            Ok(session) => {
                let mut resp = self.session_info(&session);
                resp.status = 201;
                resp
            }
            // The manager's only create-time failure is a taken name.
            Err(err) => error_body(409, err.to_string()),
        }
    }

    fn close_session(&self, name: &str) -> Response {
        match self.manager.remove(name) {
            Some(session) => ok(Json::obj([
                ("closed", Json::str(name)),
                ("iterations", Json::Num(session.iteration() as f64)),
            ])),
            None => error_body(404, format!("unknown session `{name}`")),
        }
    }

    fn apply_edit(&self, name: &str, body: &str) -> Response {
        let body = match Json::parse(body) {
            Ok(v) => v,
            Err(err) => return error_body(400, err.to_string()),
        };
        let edit = match wire::parse_edit(&body) {
            Ok(edit) => edit,
            Err(err) => return error_body(400, err.to_string()),
        };
        self.with_session(name, |session| {
            match edit {
                wire::EditRequest::SetLearnerParam { learner, param } => {
                    session.set_learner_param(&learner, param)?
                }
                wire::EditRequest::ReplaceOperator { node, kind } => {
                    session.replace_operator(&node, kind)?
                }
                wire::EditRequest::Rewire { node, parents } => {
                    let refs: Vec<&str> = parents.iter().map(String::as_str).collect();
                    session.rewire(&node, &refs)?
                }
                wire::EditRequest::AddOutput { node } => session.add_output(&node)?,
            }
            let pending = session.with(|s| {
                s.pending_edits()
                    .iter()
                    .map(|e| e.to_string())
                    .collect::<Vec<_>>()
            });
            Ok(ok(Json::obj([
                ("session", Json::str(name)),
                (
                    "pending_edits",
                    Json::Arr(pending.iter().map(Json::str).collect()),
                ),
            ])))
        })
    }

    fn iterate(&self, name: &str) -> Response {
        self.with_session(name, |session| {
            let report = session.iterate()?;
            Ok(ok(wire::report_json(&report)))
        })
    }

    /// `POST /sessions/{name}/data`: durably appends labeled rows to a
    /// CSV source's training split (the active-learning label return).
    /// Body: `{"source": "<node>", "rows": ["<csv line>", ...]}`.
    fn append_data(&self, name: &str, body: &str) -> Response {
        let body = match Json::parse(body) {
            Ok(v) => v,
            Err(err) => return error_body(400, err.to_string()),
        };
        let Some(source) = body.get("source").and_then(Json::as_str) else {
            return error_body(400, "missing or non-string field `source`");
        };
        let Some(items) = body.get("rows").and_then(Json::as_array) else {
            return error_body(400, "missing or non-array field `rows`");
        };
        let mut rows = Vec::with_capacity(items.len());
        for item in items {
            match item.as_str() {
                Some(line) => rows.push(line.to_string()),
                None => return error_body(400, "field `rows` must contain only strings"),
            }
        }
        if rows.is_empty() {
            return error_body(400, "field `rows` must not be empty");
        }
        self.with_session(name, |session| {
            let appended = session.append_data(source, &rows)?;
            Ok(ok(Json::obj([
                ("session", Json::str(name)),
                ("source", Json::str(source)),
                ("appended", Json::Num(appended as f64)),
            ])))
        })
    }

    /// `GET /sessions/{name}/uncertain?k=N`: the `k` test-split
    /// predictions closest to the decision boundary from the session's
    /// last iteration — what an active-learning oracle labels next.
    fn uncertain(&self, name: &str, req: &Request) -> Response {
        let k = match req.query_param("k") {
            Some(raw) => match raw.parse::<usize>() {
                Ok(k) => k,
                Err(_) => return error_body(400, "query parameter `k` is not a number"),
            },
            None => 10,
        };
        self.with_session(name, |session| {
            let examples = session.uncertain_examples(k)?;
            Ok(ok(Json::obj([
                ("session", Json::str(name)),
                ("k", Json::Num(k as f64)),
                (
                    "examples",
                    Json::Arr(examples.iter().map(wire::uncertain_json).collect()),
                ),
            ])))
        })
    }

    fn replace_workflow(&self, name: &str, body: &str) -> Response {
        let body = match Json::parse(body) {
            Ok(v) => v,
            Err(err) => return error_body(400, err.to_string()),
        };
        let (template, workflow) = match self.build_workflow(&body) {
            Ok(built) => built,
            Err(resp) => return resp,
        };
        self.with_session(name, |session| {
            // The replacement is itself a registry template, so the
            // durable record stays exactly recoverable (template + empty
            // edit log) instead of degrading to template-reset mode.
            session.replace_workflow_from_template(workflow, &template);
            Ok(ok(Json::obj([
                ("session", Json::str(name)),
                ("workflow_replaced", Json::Bool(true)),
            ])))
        })
    }

    fn versions(&self, name: &str) -> Response {
        self.with_session(name, |session| {
            let versions = session.versions();
            Ok(ok(Json::obj([(
                "versions",
                Json::Arr(versions.all().iter().map(wire::version_json).collect()),
            )])))
        })
    }

    fn version_detail(&self, name: &str, id: &str) -> Response {
        let Ok(id) = id.parse::<usize>() else {
            return error_body(400, format!("version id `{id}` is not a number"));
        };
        self.with_session(name, |session| {
            let versions = session.versions();
            Ok(match versions.get(id) {
                Some(version) => ok(wire::version_detail_json(version)),
                None => error_body(404, format!("session `{name}` has no version {id}")),
            })
        })
    }

    fn diff(&self, name: &str, req: &Request) -> Response {
        let parse = |key: &str| -> Result<usize, Response> {
            req.query_param(key)
                .ok_or_else(|| error_body(400, format!("missing query parameter `{key}`")))?
                .parse()
                .map_err(|_| error_body(400, format!("query parameter `{key}` is not a number")))
        };
        let (from, to) = match (parse("from"), parse("to")) {
            (Ok(from), Ok(to)) => (from, to),
            (Err(resp), _) | (_, Err(resp)) => return resp,
        };
        self.with_session(name, |session| {
            let versions = session.versions();
            Ok(match versions.diff(from, to) {
                Some(diff) => ok(wire::diff_json(&diff)),
                None => error_body(
                    404,
                    format!("session `{name}` has no versions {from} and {to}"),
                ),
            })
        })
    }

    /// `GET /stats` (schema `"v": 3`): serving counters, the live
    /// session count, the durability counters — sessions and store
    /// entries recovered at startup, current WAL size, and the unix time
    /// of the last snapshot compaction (all zero on a volatile engine) —
    /// and the optimizer counters: memo size, observations recorded,
    /// adaptive re-plans triggered, and the unix time of the last
    /// offline optimization pass. An API never attached to a socket
    /// server reports zeroed serving counters.
    fn stats(&self) -> Response {
        let snap = self
            .server_stats
            .as_deref()
            .map(ServerStats::snapshot)
            .unwrap_or_else(|| ServerStats::default().snapshot());
        let engine = self.manager.engine();
        let recovery = engine.recovery();
        let optimizer = engine.optimizer_stats();
        ok(Json::obj([
            ("v", Json::Num(3.0)),
            ("connections", Json::Num(snap.connections as f64)),
            ("requests", Json::Num(snap.requests as f64)),
            ("shed", Json::Num(snap.shed as f64)),
            ("shed_dropped", Json::Num(snap.shed_dropped as f64)),
            ("sessions_evicted", Json::Num(snap.sessions_evicted as f64)),
            ("sessions", Json::Num(self.manager.len() as f64)),
            (
                "recovered_sessions",
                Json::Num(self.manager.recovered_sessions() as f64),
            ),
            (
                "recovered_entries",
                Json::Num(recovery.store.recovered_entries as f64),
            ),
            ("wal_bytes", Json::Num(engine.store().wal_bytes() as f64)),
            (
                "last_snapshot",
                Json::Num(engine.store().last_snapshot_unix() as f64),
            ),
            ("memo_entries", Json::Num(optimizer.memo_entries as f64)),
            (
                "observations_recorded",
                Json::Num(optimizer.observations_recorded as f64),
            ),
            (
                "replans_triggered",
                Json::Num(optimizer.replans_triggered as f64),
            ),
            ("pinned", Json::Num(optimizer.pinned as f64)),
            (
                "last_offline_pass",
                Json::Num(optimizer.last_offline_unix as f64),
            ),
        ]))
    }

    /// `POST /admin/optimize`: runs the offline Optimal-materialization
    /// pass over the engine's accumulated memo history, pins the chosen
    /// node set for future materialization decisions, and evicts stored
    /// outputs the pass decided not to keep. Works on volatile engines
    /// too (the pin set just doesn't survive a restart there).
    fn admin_optimize(&self) -> Response {
        let engine = self.manager.engine();
        match engine.optimize_offline() {
            Ok(outcome) => ok(Json::obj([
                ("optimized", Json::Bool(true)),
                ("pinned", Json::Num(outcome.chosen.len() as f64)),
                ("candidates", Json::Num(outcome.candidates as f64)),
                ("chosen_cost_secs", Json::Num(outcome.chosen_cost_secs)),
                ("online_cost_secs", Json::Num(outcome.online_cost_secs)),
            ])),
            Err(err) => engine_error(err),
        }
    }

    /// `POST /admin/snapshot`: forces a durability checkpoint — compacts
    /// every store shard's WAL into its snapshot, rewrites the engine
    /// meta, and re-persists every live session record. 400 on a
    /// volatile engine, where there is nothing to checkpoint.
    fn admin_snapshot(&self) -> Response {
        let engine = self.manager.engine();
        if !engine.store().durability().is_durable() {
            return error_body(
                400,
                "store is volatile; nothing to snapshot (set HELIX_DURABILITY=wal)",
            );
        }
        if let Err(err) = engine.snapshot_now() {
            return engine_error(err);
        }
        self.manager.persist_all();
        ok(Json::obj([
            ("snapshotted", Json::Bool(true)),
            ("wal_bytes", Json::Num(engine.store().wal_bytes() as f64)),
            (
                "last_snapshot",
                Json::Num(engine.store().last_snapshot_unix() as f64),
            ),
        ]))
    }

    fn global_versions(&self) -> Response {
        let versions = self.manager.engine().versions();
        ok(Json::obj([(
            "versions",
            Json::Arr(versions.all().iter().map(wire::version_json).collect()),
        )]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn status_mapping_matches_docs() {
        assert_eq!(status_for(&HelixError::Workflow("x".into())), 400);
        assert_eq!(status_for(&HelixError::Compile("x".into())), 400);
        assert_eq!(status_for(&HelixError::Exec("x".into())), 500);
        assert_eq!(status_for(&HelixError::Store("x".into())), 500);
        assert_eq!(status_for(&HelixError::Io(std::io::Error::other("x"))), 500);
    }

    #[test]
    fn parse_failures_map_to_400_and_413() {
        let too_large = ParseError::BodyTooLarge {
            declared: 10,
            limit: 5,
        };
        assert_eq!(Api::parse_failure(&too_large).status, 413);
        let malformed = ParseError::Malformed("nope".into());
        assert_eq!(Api::parse_failure(&malformed).status, 400);
        let stalled = ParseError::TimedOut { mid_request: true };
        assert_eq!(Api::parse_failure(&stalled).status, 408);
    }
}
