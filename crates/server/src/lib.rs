//! `helix-server`: the HTTP front end that turns the session-oriented
//! engine into a network service for remote analysts.
//!
//! Helix's premise is a human iterating against a live optimizing
//! engine; the vision paper ("Accelerating Human-in-the-loop ML:
//! Challenges and Opportunities") calls for exactly this surface — an
//! interactive service over the engine, so edits and reruns arrive over
//! the network instead of an in-process API. This crate provides it with
//! zero dependencies beyond `std` (the offline build environment has no
//! network crates, so [`http`] hand-rolls the protocol the way the shim
//! crates stand in for external APIs):
//!
//! * [`json`] — JSON values, parser, and writer (shared with the
//!   `bench_guard` regression gate).
//! * [`http`] — minimal HTTP/1.1 with persistent (keep-alive)
//!   connections, `Content-Length` framing, and a body-size cap.
//! * [`wire`] — `IterationReport` / version-history / diff JSON views
//!   and typed-edit request parsing.
//! * [`routes`] — the endpoint table over
//!   [`SessionManager`](helix_core::SessionManager) and the
//!   `HelixError` → status-code mapping.
//! * [`server`] — the `TcpListener` accept loop and bounded worker
//!   pool; each worker serves a keep-alive request loop with read/write
//!   timeouts (slowloris defense), overflow is shed with `503` by a
//!   single bounded shedder, idle sessions are evicted on a TTL, and
//!   shutdown joins every thread.
//! * [`client`] — a blocking client (one-shot helpers plus a
//!   persistent keep-alive `Client`) used by the examples, the
//!   end-to-end tests, and the serving load harness.
//!
//! The wire protocol is documented endpoint-by-endpoint in
//! `docs/API.md`; `examples/serve.rs` runs a live server.
//!
//! # Example
//!
//! ```
//! use helix_server::{client, routes::{Api, WorkflowRegistry}, server::{Server, ServerConfig}};
//! use helix_core::{Engine, EngineConfig, SessionManager, Workflow};
//! use std::sync::Arc;
//!
//! let dir = std::env::temp_dir().join(format!("helix-server-doc-{}", std::process::id()));
//! let manager = Arc::new(SessionManager::with_config(
//!     EngineConfig::helix(dir.join("store"))).unwrap());
//! let mut registry = WorkflowRegistry::new();
//! registry.register("empty", || Ok(Workflow::new("empty")));
//!
//! let mut server = Server::bind(
//!     ("127.0.0.1", 0),
//!     Api::new(manager, registry),
//!     ServerConfig::default(),
//! ).unwrap();
//!
//! let health = client::get(server.addr(), "/healthz").unwrap().expect_ok();
//! assert_eq!(health.get("status").unwrap().as_str(), Some("ok"));
//! server.shutdown();
//! ```

#![warn(missing_docs)]

pub mod client;
pub mod http;
pub mod json;
pub mod routes;
pub mod server;
pub mod wire;

pub use json::Json;
pub use routes::{Api, WorkflowRegistry};
pub use server::{Server, ServerConfig, ServerHandle};
