//! JSON wire codec — re-export of the shared [`helix_json`] crate.
//!
//! The codec started life here as the server's private wire format; the
//! durable tier promoted it to its own crate (`crates/json`) so the core
//! persistence layer (WAL records, version-DAG and session snapshots)
//! and `bench_guard` can share one parser. This module stays as a thin
//! re-export so existing `helix_server::json::Json` imports keep
//! working.

pub use helix_json::{Json, JsonError};
