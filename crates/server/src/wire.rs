//! Translation between engine types and their JSON wire shapes.
//!
//! One direction serializes [`IterationReport`], version history, and
//! diffs into [`Json`] values (the shapes documented in
//! `docs/API.md`); the other parses the typed-edit request bodies into
//! an [`EditRequest`] the routing layer applies through a
//! [`helix_core::SessionHandle`]. Parsing rejects unknown fields'
//! *values* loudly (unknown edit kinds, bad metric names) but ignores
//! extra keys, so clients can be newer than the server.

use crate::json::Json;
use helix_core::ops::{EvalSpec, MetricKind, ModelType, OperatorKind};
use helix_core::report::{IterationReport, NodeReport, WaveReport};
use helix_core::signature::ChangeKind;
use helix_core::version::{DagSnapshot, VersionDiff, WorkflowVersion};
use helix_core::{LearnerParam, LearnerSpec, NodeState};

/// Stable wire name of a plan state.
pub fn node_state_str(state: NodeState) -> &'static str {
    match state {
        NodeState::Load => "load",
        NodeState::Compute => "compute",
        NodeState::Prune => "prune",
    }
}

/// Stable wire name of a change kind.
pub fn change_kind_str(change: ChangeKind) -> &'static str {
    match change {
        ChangeKind::Unchanged => "unchanged",
        ChangeKind::LocallyChanged => "locally-changed",
        ChangeKind::TransitivelyAffected => "transitively-affected",
        ChangeKind::Added => "added",
    }
}

fn node_json(node: &NodeReport) -> Json {
    Json::obj([
        ("name", Json::str(&node.name)),
        ("stage", Json::str(node.stage.to_string())),
        ("state", Json::str(node_state_str(node.state))),
        ("change", Json::str(change_kind_str(node.change))),
        (
            "wave",
            node.wave.map_or(Json::Null, |w| Json::Num(w as f64)),
        ),
        ("duration_secs", Json::Num(node.duration_secs)),
        ("output_bytes", Json::Num(node.output_bytes as f64)),
        ("materialized", Json::Bool(node.materialized)),
        ("chunks_loaded", Json::Num(node.chunks_loaded as f64)),
        (
            "decision_source",
            Json::str(node.decision_source.to_string()),
        ),
    ])
}

fn wave_json(wave: &WaveReport) -> Json {
    Json::obj([
        ("nodes", Json::Num(wave.nodes as f64)),
        ("secs", Json::Num(wave.secs)),
    ])
}

fn metrics_json(metrics: &[(String, f64)]) -> Json {
    Json::Obj(
        metrics
            .iter()
            .map(|(name, value)| (name.clone(), Json::Num(*value)))
            .collect(),
    )
}

/// The full report shape returned by `POST /sessions/{name}/iterate`:
/// per-node timings and states, derived wave summaries, reuse counts,
/// and harvested metrics.
pub fn report_json(report: &IterationReport) -> Json {
    Json::obj([
        ("iteration", Json::Num(report.iteration as f64)),
        ("workflow", Json::str(&report.workflow_name)),
        (
            "session",
            report.session.as_deref().map_or(Json::Null, Json::str),
        ),
        ("change_summary", Json::str(&report.change_summary)),
        ("total_secs", Json::Num(report.total_secs)),
        ("optimizer_secs", Json::Num(report.optimizer_secs)),
        ("materialize_secs", Json::Num(report.materialize_secs)),
        ("loaded", Json::Num(report.loaded() as f64)),
        ("computed", Json::Num(report.computed() as f64)),
        ("pruned", Json::Num(report.pruned() as f64)),
        ("reuse_rate", Json::Num(report.reuse_rate())),
        ("chunks_reused", Json::Num(report.chunks_reused() as f64)),
        ("metrics", metrics_json(&report.metrics)),
        (
            "nodes",
            Json::Arr(report.nodes.iter().map(node_json).collect()),
        ),
        (
            "waves",
            Json::Arr(report.waves.iter().map(wave_json).collect()),
        ),
    ])
}

/// A version-history entry, without its DAG snapshot (list view).
pub fn version_json(version: &WorkflowVersion) -> Json {
    Json::obj([
        ("id", Json::Num(version.id as f64)),
        (
            "session",
            version.session.as_deref().map_or(Json::Null, Json::str),
        ),
        ("change_summary", Json::str(&version.change_summary)),
        ("total_secs", Json::Num(version.total_secs)),
        ("metrics", metrics_json(&version.metrics)),
    ])
}

/// A version-history entry including its full DAG snapshot (detail /
/// lineage view).
pub fn version_detail_json(version: &WorkflowVersion) -> Json {
    let Json::Obj(mut pairs) = version_json(version) else {
        unreachable!("version_json returns an object");
    };
    pairs.push(("dag".to_string(), snapshot_json(&version.snapshot)));
    Json::Obj(pairs)
}

/// The executed DAG: nodes with operator tag, canonical params, parents,
/// and stage, plus the output set.
pub fn snapshot_json(snapshot: &DagSnapshot) -> Json {
    let nodes = snapshot
        .nodes
        .iter()
        .map(|node| {
            Json::obj([
                ("name", Json::str(&node.name)),
                ("tag", Json::str(&node.tag)),
                ("params", Json::str(&node.params)),
                (
                    "parents",
                    Json::Arr(node.parents.iter().map(Json::str).collect()),
                ),
                ("stage", Json::str(node.stage.to_string())),
            ])
        })
        .collect();
    Json::obj([
        ("nodes", Json::Arr(nodes)),
        (
            "outputs",
            Json::Arr(snapshot.outputs.iter().map(Json::str).collect()),
        ),
    ])
}

/// A git-style structural diff between two versions.
pub fn diff_json(diff: &VersionDiff) -> Json {
    Json::obj([
        (
            "added",
            Json::Arr(diff.added.iter().map(Json::str).collect()),
        ),
        (
            "removed",
            Json::Arr(diff.removed.iter().map(Json::str).collect()),
        ),
        (
            "changed",
            Json::Arr(
                diff.changed
                    .iter()
                    .map(|(name, old, new)| {
                        Json::obj([
                            ("name", Json::str(name)),
                            ("old", Json::str(old)),
                            ("new", Json::str(new)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// One ranked prediction from `GET /sessions/{name}/uncertain` — the
/// active-learning candidate shape documented in `docs/API.md`.
pub fn uncertain_json(example: &helix_core::UncertainExample) -> Json {
    Json::obj([
        ("index", Json::Num(example.index as f64)),
        ("label", Json::Num(example.label)),
        ("score", Json::Num(example.score)),
        ("pred", Json::Num(example.pred)),
        ("margin", Json::Num(example.margin)),
    ])
}

/// A typed edit parsed off the wire — the four `Session` edit handles.
#[derive(Debug, Clone)]
pub enum EditRequest {
    /// `Session::set_learner_param`.
    SetLearnerParam {
        /// Learner node addressed by the client.
        learner: String,
        /// The knob to turn.
        param: LearnerParam,
    },
    /// `Session::replace_operator` (evaluate and train specs only — the
    /// operator kinds whose parameters fit a flat JSON object).
    ReplaceOperator {
        /// The node to edit in place.
        node: String,
        /// The replacement operator.
        kind: OperatorKind,
    },
    /// `Session::rewire`.
    Rewire {
        /// The node whose parents change.
        node: String,
        /// New parent names, in wiring order.
        parents: Vec<String>,
    },
    /// `Session::add_output`.
    AddOutput {
        /// The node to mark as output.
        node: String,
    },
}

/// A malformed edit body: the message names the offending field.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EditParseError(pub String);

impl std::fmt::Display for EditParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

fn required_str(body: &Json, key: &str) -> Result<String, EditParseError> {
    body.get(key)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| EditParseError(format!("missing or non-string field `{key}`")))
}

fn parse_model(name: &str) -> Result<ModelType, EditParseError> {
    match name {
        "logreg" | "logistic_regression" => Ok(ModelType::LogisticRegression),
        "linreg" | "linear_regression" => Ok(ModelType::LinearRegression),
        "naive_bayes" => Ok(ModelType::NaiveBayes),
        "perceptron" => Ok(ModelType::Perceptron),
        other => Err(EditParseError(format!("unknown model `{other}`"))),
    }
}

fn parse_metric(name: &str) -> Result<MetricKind, EditParseError> {
    match name {
        "accuracy" => Ok(MetricKind::Accuracy),
        "precision" => Ok(MetricKind::Precision),
        "recall" => Ok(MetricKind::Recall),
        "f1" => Ok(MetricKind::F1),
        "log_loss" => Ok(MetricKind::LogLoss),
        "rmse" => Ok(MetricKind::Rmse),
        other => Err(EditParseError(format!("unknown metric `{other}`"))),
    }
}

fn parse_learner_param(body: &Json) -> Result<LearnerParam, EditParseError> {
    let param = required_str(body, "param")?;
    let value = body
        .get("value")
        .ok_or_else(|| EditParseError("missing field `value`".into()))?;
    let num = |what: &str| {
        value
            .as_f64()
            .ok_or_else(|| EditParseError(format!("`value` for `{what}` must be a number")))
    };
    // Counts and seeds must be exact non-negative integers; silently
    // truncating 2.7 epochs (or saturating -3 to 0) would make the
    // recorded edit diverge from what actually trains.
    let uint = |what: &str| {
        value.as_u64().ok_or_else(|| {
            EditParseError(format!(
                "`value` for `{what}` must be a non-negative integer"
            ))
        })
    };
    match param.as_str() {
        "reg_param" => Ok(LearnerParam::RegParam(num("reg_param")?)),
        "learning_rate" => Ok(LearnerParam::LearningRate(num("learning_rate")?)),
        "epochs" => Ok(LearnerParam::Epochs(uint("epochs")? as usize)),
        "seed" => Ok(LearnerParam::Seed(uint("seed")?)),
        "model" => {
            let name = value
                .as_str()
                .ok_or_else(|| EditParseError("`value` for `model` must be a string".into()))?;
            Ok(LearnerParam::Model(parse_model(name)?))
        }
        other => Err(EditParseError(format!("unknown learner param `{other}`"))),
    }
}

fn parse_operator(spec: &Json) -> Result<OperatorKind, EditParseError> {
    match required_str(spec, "kind")?.as_str() {
        "evaluate" => {
            let metric_names = spec
                .get("metrics")
                .and_then(Json::as_array)
                .ok_or_else(|| EditParseError("evaluate spec needs a `metrics` array".into()))?;
            let metrics = metric_names
                .iter()
                .map(|m| {
                    m.as_str()
                        .ok_or_else(|| EditParseError("metric names must be strings".into()))
                        .and_then(parse_metric)
                })
                .collect::<Result<Vec<_>, _>>()?;
            if metrics.is_empty() {
                return Err(EditParseError(
                    "evaluate spec needs at least one metric".into(),
                ));
            }
            let split = spec
                .get("split")
                .map(|s| {
                    s.as_str()
                        .map(str::to_string)
                        .ok_or_else(|| EditParseError("`split` must be a string".into()))
                })
                .transpose()?
                .unwrap_or_else(|| helix_core::SPLIT_TEST.to_string());
            Ok(OperatorKind::Evaluate(EvalSpec { metrics, split }))
        }
        "train" => {
            let mut learner = LearnerSpec::default();
            if let Some(model) = spec.get("model") {
                let name = model
                    .as_str()
                    .ok_or_else(|| EditParseError("`model` must be a string".into()))?;
                learner.model_type = parse_model(name)?;
            }
            let num = |key: &str| -> Result<Option<f64>, EditParseError> {
                spec.get(key)
                    .map(|v| {
                        v.as_f64()
                            .ok_or_else(|| EditParseError(format!("`{key}` must be a number")))
                    })
                    .transpose()
            };
            let uint = |key: &str| -> Result<Option<u64>, EditParseError> {
                spec.get(key)
                    .map(|v| {
                        v.as_u64().ok_or_else(|| {
                            EditParseError(format!("`{key}` must be a non-negative integer"))
                        })
                    })
                    .transpose()
            };
            if let Some(v) = num("reg_param")? {
                learner.reg_param = v;
            }
            if let Some(v) = uint("epochs")? {
                learner.epochs = v as usize;
            }
            if let Some(v) = num("learning_rate")? {
                learner.learning_rate = v;
            }
            if let Some(v) = uint("seed")? {
                learner.seed = v;
            }
            Ok(OperatorKind::Train(learner))
        }
        other => Err(EditParseError(format!(
            "unsupported operator kind `{other}` (wire edits support `evaluate` and `train`)"
        ))),
    }
}

/// Parses one typed-edit request body.
pub fn parse_edit(body: &Json) -> Result<EditRequest, EditParseError> {
    match required_str(body, "kind")?.as_str() {
        "set_learner_param" => Ok(EditRequest::SetLearnerParam {
            learner: required_str(body, "learner")?,
            param: parse_learner_param(body)?,
        }),
        "replace_operator" => {
            let spec = body
                .get("operator")
                .ok_or_else(|| EditParseError("missing field `operator`".into()))?;
            Ok(EditRequest::ReplaceOperator {
                node: required_str(body, "node")?,
                kind: parse_operator(spec)?,
            })
        }
        "rewire" => {
            let parents = body
                .get("parents")
                .and_then(Json::as_array)
                .ok_or_else(|| EditParseError("rewire needs a `parents` array".into()))?
                .iter()
                .map(|p| {
                    p.as_str()
                        .map(str::to_string)
                        .ok_or_else(|| EditParseError("parent names must be strings".into()))
                })
                .collect::<Result<Vec<_>, _>>()?;
            Ok(EditRequest::Rewire {
                node: required_str(body, "node")?,
                parents,
            })
        }
        "add_output" => Ok(EditRequest::AddOutput {
            node: required_str(body, "node")?,
        }),
        other => Err(EditParseError(format!("unknown edit kind `{other}`"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_all_four_edit_kinds() {
        let edit = parse_edit(
            &Json::parse(
                r#"{"kind":"set_learner_param","learner":"preds","param":"reg_param","value":0.5}"#,
            )
            .unwrap(),
        )
        .unwrap();
        match edit {
            EditRequest::SetLearnerParam { learner, param } => {
                assert_eq!(learner, "preds");
                assert_eq!(param, LearnerParam::RegParam(0.5));
            }
            other => panic!("unexpected {other:?}"),
        }

        let edit = parse_edit(
            &Json::parse(
                r#"{"kind":"replace_operator","node":"checked",
                    "operator":{"kind":"evaluate","metrics":["f1"],"split":"test"}}"#,
            )
            .unwrap(),
        )
        .unwrap();
        match edit {
            EditRequest::ReplaceOperator { node, kind } => {
                assert_eq!(node, "checked");
                assert_eq!(kind.tag(), "evaluate");
            }
            other => panic!("unexpected {other:?}"),
        }

        let edit = parse_edit(
            &Json::parse(r#"{"kind":"rewire","node":"x","parents":["a","b"]}"#).unwrap(),
        )
        .unwrap();
        match edit {
            EditRequest::Rewire { node, parents } => {
                assert_eq!(node, "x");
                assert_eq!(parents, vec!["a".to_string(), "b".to_string()]);
            }
            other => panic!("unexpected {other:?}"),
        }

        let edit =
            parse_edit(&Json::parse(r#"{"kind":"add_output","node":"income"}"#).unwrap()).unwrap();
        match edit {
            EditRequest::AddOutput { node } => assert_eq!(node, "income"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_model_param_and_train_spec() {
        let edit = parse_edit(
            &Json::parse(
                r#"{"kind":"set_learner_param","learner":"p","param":"model","value":"naive_bayes"}"#,
            )
            .unwrap(),
        )
        .unwrap();
        match edit {
            EditRequest::SetLearnerParam { learner, param } => {
                assert_eq!(learner, "p");
                assert_eq!(param, LearnerParam::Model(ModelType::NaiveBayes));
            }
            other => panic!("unexpected {other:?}"),
        }

        let edit = parse_edit(
            &Json::parse(
                r#"{"kind":"replace_operator","node":"p__model",
                    "operator":{"kind":"train","model":"perceptron","epochs":3}}"#,
            )
            .unwrap(),
        )
        .unwrap();
        match edit {
            EditRequest::ReplaceOperator {
                kind: OperatorKind::Train(spec),
                ..
            } => {
                assert_eq!(spec.model_type, ModelType::Perceptron);
                assert_eq!(spec.epochs, 3);
                assert_eq!(spec.reg_param, LearnerSpec::default().reg_param);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn rejects_unknown_kinds_and_missing_fields() {
        for bad in [
            r#"{"kind":"drop_table"}"#,
            r#"{"learner":"p"}"#,
            r#"{"kind":"set_learner_param","learner":"p","param":"volume","value":11}"#,
            r#"{"kind":"set_learner_param","learner":"p","param":"reg_param","value":"loud"}"#,
            r#"{"kind":"set_learner_param","learner":"p","param":"epochs","value":2.7}"#,
            r#"{"kind":"set_learner_param","learner":"p","param":"seed","value":-3}"#,
            r#"{"kind":"replace_operator","node":"n","operator":{"kind":"train","epochs":1.5}}"#,
            r#"{"kind":"replace_operator","node":"n","operator":{"kind":"csv_source"}}"#,
            r#"{"kind":"replace_operator","node":"n","operator":{"kind":"evaluate","metrics":["vibes"]}}"#,
            r#"{"kind":"rewire","node":"n"}"#,
        ] {
            assert!(
                parse_edit(&Json::parse(bad).unwrap()).is_err(),
                "should reject: {bad}"
            );
        }
    }

    #[test]
    fn report_json_shape() {
        use helix_core::ops::Stage;
        use std::sync::Arc;
        let report = IterationReport {
            iteration: 2,
            workflow_name: "census".into(),
            session: Some("alice".into()),
            change_summary: "set preds reg_param=0.5".into(),
            total_secs: 1.25,
            optimizer_secs: 0.01,
            materialize_secs: 0.25,
            nodes: vec![NodeReport {
                name: "rows".into(),
                stage: Stage::DataPreProcessing,
                state: NodeState::Load,
                change: ChangeKind::Unchanged,
                wave: Some(0),
                duration_secs: 0.5,
                output_bytes: 2048,
                materialized: false,
                chunks_loaded: 0,
                decision_source: helix_core::DecisionSource::Estimate,
            }],
            waves: vec![WaveReport {
                nodes: 1,
                secs: 0.5,
            }],
            metrics: vec![("accuracy".into(), 0.83)],
            snapshot: Arc::default(),
        };
        let json = report_json(&report);
        assert_eq!(json.get("iteration").unwrap().as_u64(), Some(2));
        assert_eq!(json.get("loaded").unwrap().as_u64(), Some(1));
        assert_eq!(json.get("session").unwrap().as_str(), Some("alice"));
        assert_eq!(
            json.get("metrics")
                .unwrap()
                .get("accuracy")
                .unwrap()
                .as_f64(),
            Some(0.83)
        );
        let node = &json.get("nodes").unwrap().as_array().unwrap()[0];
        assert_eq!(node.get("state").unwrap().as_str(), Some("load"));
        assert_eq!(node.get("change").unwrap().as_str(), Some("unchanged"));
        assert_eq!(
            node.get("decision_source").unwrap().as_str(),
            Some("estimate")
        );
        // The whole report reparses as valid JSON.
        assert_eq!(Json::parse(&json.to_string()).unwrap(), json);
    }
}
