//! A minimal blocking HTTP client for the wire protocol — enough for
//! the examples, the end-to-end tests, and the serving bench to drive a
//! server over real sockets without external crates.
//!
//! Two flavors: the free functions ([`get`], [`post`], …) open one
//! `Connection: close` connection per request, while [`Client`] holds a
//! **keep-alive** connection and reuses it across requests — the shape
//! an iterating analyst's edit→rerun loop takes, and what the serving
//! load harness measures. `Client` reconnects transparently when the
//! server closes the connection (request cap reached, idle timeout).

use crate::json::{Json, JsonError};
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};

/// A parsed response: status code plus decoded JSON body.
#[derive(Debug, Clone)]
pub struct ClientResponse {
    /// HTTP status code.
    pub status: u16,
    /// Parsed body.
    pub body: Json,
}

impl ClientResponse {
    /// Asserts a 2xx status, returning the body; panics with the error
    /// payload otherwise (test/example ergonomics).
    pub fn expect_ok(self) -> Json {
        assert!(
            (200..300).contains(&self.status),
            "request failed with status {}: {}",
            self.status,
            self.body
        );
        self.body
    }
}

/// Errors from [`request`].
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure.
    Io(io::Error),
    /// The server's response was not parseable HTTP/JSON.
    BadResponse(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(err) => write!(f, "i/o error: {err}"),
            ClientError::BadResponse(msg) => write!(f, "bad response: {msg}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(err: io::Error) -> Self {
        ClientError::Io(err)
    }
}

impl From<JsonError> for ClientError {
    fn from(err: JsonError) -> Self {
        ClientError::BadResponse(err.to_string())
    }
}

/// Performs one request against `addr`. `body` is sent verbatim as JSON
/// when non-empty. One connection per request, mirroring the server's
/// `Connection: close` model.
pub fn request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: &str,
) -> Result<ClientResponse, ClientError> {
    let mut stream = TcpStream::connect(addr)?;
    let _ = stream.set_nodelay(true);
    let mut head = format!("{method} {path} HTTP/1.1\r\nHost: {addr}\r\n");
    if !body.is_empty() {
        head.push_str(&format!(
            "Content-Type: application/json\r\nContent-Length: {}\r\n",
            body.len()
        ));
    }
    head.push_str("Connection: close\r\n\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()?;
    // Half-close: signals end-of-request so the server's early-reject
    // drain sees EOF instead of waiting out its read timeout.
    let _ = stream.shutdown(std::net::Shutdown::Write);

    let mut raw = String::new();
    stream.read_to_string(&mut raw)?;
    parse_response(&raw)
}

/// Splits a raw HTTP/1.1 response into status + JSON body.
fn parse_response(raw: &str) -> Result<ClientResponse, ClientError> {
    let (head, body) = raw
        .split_once("\r\n\r\n")
        .ok_or_else(|| ClientError::BadResponse("no header/body separator".into()))?;
    let status_line = head.lines().next().unwrap_or_default();
    let status = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| ClientError::BadResponse(format!("bad status line `{status_line}`")))?;
    let body = Json::parse(body)?;
    Ok(ClientResponse { status, body })
}

/// A persistent keep-alive connection to one server: requests reuse the
/// underlying TCP stream, and responses are framed by `Content-Length`
/// (never by EOF). When the server announces `Connection: close` — or
/// the stream turns out dead on the next use — the client reconnects
/// once and retries, so callers see a plain request/response API.
#[derive(Debug)]
pub struct Client {
    addr: SocketAddr,
    conn: Option<BufReader<TcpStream>>,
    /// Connections opened so far (1 after the first request; grows only
    /// when the server closes and the client reconnects). Exposed so
    /// tests can assert reuse and post-`close` reconnection.
    connects: usize,
}

impl Client {
    /// A client for `addr`. No connection is opened until the first
    /// request.
    pub fn new(addr: SocketAddr) -> Client {
        Client {
            addr,
            conn: None,
            connects: 0,
        }
    }

    /// How many TCP connections this client has opened so far.
    pub fn connects(&self) -> usize {
        self.connects
    }

    /// GET over the persistent connection.
    pub fn get(&mut self, path: &str) -> Result<ClientResponse, ClientError> {
        self.request("GET", path, "")
    }

    /// POST with a JSON body over the persistent connection.
    pub fn post(&mut self, path: &str, body: &str) -> Result<ClientResponse, ClientError> {
        self.request("POST", path, body)
    }

    /// PUT with a JSON body over the persistent connection.
    pub fn put(&mut self, path: &str, body: &str) -> Result<ClientResponse, ClientError> {
        self.request("PUT", path, body)
    }

    /// DELETE over the persistent connection.
    pub fn delete(&mut self, path: &str) -> Result<ClientResponse, ClientError> {
        self.request("DELETE", path, "")
    }

    /// Performs one request, transparently reconnecting (once) if the
    /// reused connection turns out to have been closed server-side.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: &str,
    ) -> Result<ClientResponse, ClientError> {
        let had_conn = self.conn.is_some();
        match self.request_once(method, path, body) {
            Ok(resp) => Ok(resp),
            // A stale keep-alive connection surfaces as an I/O error or
            // a short read; a fresh connection gets one clean retry.
            // Never retried on a fresh connection: that would double-send.
            Err(_) if had_conn => {
                self.conn = None;
                self.request_once(method, path, body)
            }
            Err(err) => Err(err),
        }
    }

    fn request_once(
        &mut self,
        method: &str,
        path: &str,
        body: &str,
    ) -> Result<ClientResponse, ClientError> {
        if self.conn.is_none() {
            let stream = TcpStream::connect(self.addr)?;
            // Nagle + delayed ACK would stall every request on this reused
            // connection by ~40ms; requests are single writes anyway.
            let _ = stream.set_nodelay(true);
            self.conn = Some(BufReader::new(stream));
            self.connects += 1;
        }
        let conn = self.conn.as_mut().expect("connection just ensured");
        let mut head = format!("{method} {path} HTTP/1.1\r\nHost: {}\r\n", self.addr);
        if !body.is_empty() {
            head.push_str(&format!(
                "Content-Type: application/json\r\nContent-Length: {}\r\n",
                body.len()
            ));
        }
        head.push_str("\r\n");
        {
            let stream = conn.get_mut();
            stream.write_all(head.as_bytes())?;
            stream.write_all(body.as_bytes())?;
            stream.flush()?;
        }
        let (resp, server_closed) = read_framed_response(conn)?;
        if server_closed {
            self.conn = None;
        }
        Ok(resp)
    }
}

/// Reads one `Content-Length`-framed response off a persistent
/// connection. Returns the parsed response and whether the server
/// announced `Connection: close`.
fn read_framed_response(reader: &mut impl BufRead) -> Result<(ClientResponse, bool), ClientError> {
    let mut line = String::new();
    if reader.read_line(&mut line)? == 0 {
        return Err(ClientError::BadResponse(
            "connection closed before status line".into(),
        ));
    }
    let status = line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| ClientError::BadResponse(format!("bad status line `{}`", line.trim())))?;
    let mut content_length = 0usize;
    let mut server_closed = false;
    loop {
        let mut header = String::new();
        if reader.read_line(&mut header)? == 0 {
            return Err(ClientError::BadResponse(
                "connection closed inside headers".into(),
            ));
        }
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            let value = value.trim();
            match name.to_ascii_lowercase().as_str() {
                "content-length" => {
                    content_length = value.parse().map_err(|_| {
                        ClientError::BadResponse(format!("bad Content-Length `{value}`"))
                    })?;
                }
                "connection" => {
                    server_closed = value.eq_ignore_ascii_case("close");
                }
                _ => {}
            }
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    let body = String::from_utf8(body)
        .map_err(|_| ClientError::BadResponse("non-UTF-8 response body".into()))?;
    let body = Json::parse(&body)?;
    Ok((ClientResponse { status, body }, server_closed))
}

/// Convenience wrappers naming the protocol's verbs.
pub fn get(addr: SocketAddr, path: &str) -> Result<ClientResponse, ClientError> {
    request(addr, "GET", path, "")
}

/// POST with a JSON body.
pub fn post(addr: SocketAddr, path: &str, body: &str) -> Result<ClientResponse, ClientError> {
    request(addr, "POST", path, body)
}

/// PUT with a JSON body.
pub fn put(addr: SocketAddr, path: &str, body: &str) -> Result<ClientResponse, ClientError> {
    request(addr, "PUT", path, body)
}

/// DELETE.
pub fn delete(addr: SocketAddr, path: &str) -> Result<ClientResponse, ClientError> {
    request(addr, "DELETE", path, "")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_responses() {
        let raw = "HTTP/1.1 201 Created\r\nContent-Type: application/json\r\n\r\n{\"name\":\"a\"}";
        let resp = parse_response(raw).unwrap();
        assert_eq!(resp.status, 201);
        assert_eq!(resp.body.get("name").unwrap().as_str(), Some("a"));
        assert!(parse_response("garbage").is_err());
    }

    #[test]
    fn framed_reader_stops_at_content_length_and_sees_close() {
        // Two pipelined responses on one stream: the reader must frame by
        // Content-Length, not EOF, leaving the second response unread.
        let raw = "HTTP/1.1 200 OK\r\nContent-Length: 12\r\nConnection: keep-alive\r\n\r\n\
                   {\"name\":\"a\"}\
                   HTTP/1.1 503 Service Unavailable\r\nContent-Length: 2\r\nConnection: close\r\n\r\n{}";
        let mut reader = std::io::BufReader::new(raw.as_bytes());
        let (first, closed) = read_framed_response(&mut reader).unwrap();
        assert_eq!(first.status, 200);
        assert_eq!(first.body.get("name").unwrap().as_str(), Some("a"));
        assert!(
            !closed,
            "keep-alive response must not mark the connection closed"
        );
        let (second, closed) = read_framed_response(&mut reader).unwrap();
        assert_eq!(second.status, 503);
        assert!(closed, "Connection: close must be surfaced");
        assert!(
            read_framed_response(&mut reader).is_err(),
            "EOF before a status line is an error"
        );
    }
}
