//! A minimal blocking HTTP client for the wire protocol — enough for
//! the examples, the end-to-end tests, and the serving bench to drive a
//! server over real sockets without external crates.

use crate::json::{Json, JsonError};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream};

/// A parsed response: status code plus decoded JSON body.
#[derive(Debug, Clone)]
pub struct ClientResponse {
    /// HTTP status code.
    pub status: u16,
    /// Parsed body.
    pub body: Json,
}

impl ClientResponse {
    /// Asserts a 2xx status, returning the body; panics with the error
    /// payload otherwise (test/example ergonomics).
    pub fn expect_ok(self) -> Json {
        assert!(
            (200..300).contains(&self.status),
            "request failed with status {}: {}",
            self.status,
            self.body
        );
        self.body
    }
}

/// Errors from [`request`].
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure.
    Io(io::Error),
    /// The server's response was not parseable HTTP/JSON.
    BadResponse(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(err) => write!(f, "i/o error: {err}"),
            ClientError::BadResponse(msg) => write!(f, "bad response: {msg}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(err: io::Error) -> Self {
        ClientError::Io(err)
    }
}

impl From<JsonError> for ClientError {
    fn from(err: JsonError) -> Self {
        ClientError::BadResponse(err.to_string())
    }
}

/// Performs one request against `addr`. `body` is sent verbatim as JSON
/// when non-empty. One connection per request, mirroring the server's
/// `Connection: close` model.
pub fn request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: &str,
) -> Result<ClientResponse, ClientError> {
    let mut stream = TcpStream::connect(addr)?;
    let mut head = format!("{method} {path} HTTP/1.1\r\nHost: {addr}\r\n");
    if !body.is_empty() {
        head.push_str(&format!(
            "Content-Type: application/json\r\nContent-Length: {}\r\n",
            body.len()
        ));
    }
    head.push_str("Connection: close\r\n\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()?;
    // Half-close: signals end-of-request so the server's early-reject
    // drain sees EOF instead of waiting out its read timeout.
    let _ = stream.shutdown(std::net::Shutdown::Write);

    let mut raw = String::new();
    stream.read_to_string(&mut raw)?;
    parse_response(&raw)
}

/// Splits a raw HTTP/1.1 response into status + JSON body.
fn parse_response(raw: &str) -> Result<ClientResponse, ClientError> {
    let (head, body) = raw
        .split_once("\r\n\r\n")
        .ok_or_else(|| ClientError::BadResponse("no header/body separator".into()))?;
    let status_line = head.lines().next().unwrap_or_default();
    let status = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| ClientError::BadResponse(format!("bad status line `{status_line}`")))?;
    let body = Json::parse(body)?;
    Ok(ClientResponse { status, body })
}

/// Convenience wrappers naming the protocol's verbs.
pub fn get(addr: SocketAddr, path: &str) -> Result<ClientResponse, ClientError> {
    request(addr, "GET", path, "")
}

/// POST with a JSON body.
pub fn post(addr: SocketAddr, path: &str, body: &str) -> Result<ClientResponse, ClientError> {
    request(addr, "POST", path, body)
}

/// PUT with a JSON body.
pub fn put(addr: SocketAddr, path: &str, body: &str) -> Result<ClientResponse, ClientError> {
    request(addr, "PUT", path, body)
}

/// DELETE.
pub fn delete(addr: SocketAddr, path: &str) -> Result<ClientResponse, ClientError> {
    request(addr, "DELETE", path, "")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_responses() {
        let raw = "HTTP/1.1 201 Created\r\nContent-Type: application/json\r\n\r\n{\"name\":\"a\"}";
        let resp = parse_response(raw).unwrap();
        assert_eq!(resp.status, 201);
        assert_eq!(resp.body.get("name").unwrap().as_str(), Some("a"));
        assert!(parse_response("garbage").is_err());
    }
}
