//! Serving hardening over real sockets: slowloris containment, bounded
//! 503 shedding, per-connection request caps, and server-driven
//! idle-session eviction. Each test pins a defense that keeps one
//! misbehaving client from degrading every other analyst.

use helix_core::ops::ExtractorKind;
use helix_core::{EngineConfig, SessionManager, Workflow};
use helix_server::client::{self, Client};
use helix_server::routes::{Api, WorkflowRegistry};
use helix_server::server::{Server, ServerConfig, ServerHandle};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("helix-hard-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn mini_workflow(dir: &Path) -> helix_core::Result<Workflow> {
    let train = dir.join("train.csv");
    let test = dir.join("test.csv");
    if !train.exists() {
        std::fs::write(&train, "BS,30,1\nMS,40,0\n".repeat(300)).unwrap();
        std::fs::write(&test, "BS,35,1\nMS,45,0\n".repeat(60)).unwrap();
    }
    let mut w = Workflow::new("mini");
    let data = w.csv_source("data", &train, Some(&test))?;
    let rows = w.csv_scanner(
        "rows",
        &data,
        &[
            ("edu", helix_dataflow::DataType::Str),
            ("age", helix_dataflow::DataType::Int),
            ("target", helix_dataflow::DataType::Int),
        ],
    )?;
    let edu = w.field_extractor("edu_f", &rows, "edu", ExtractorKind::Categorical)?;
    let age = w.field_extractor("age_f", &rows, "age", ExtractorKind::Numeric)?;
    let target = w.field_extractor("target_f", &rows, "target", ExtractorKind::Numeric)?;
    let income = w.assemble("income", &rows, &[&edu, &age], &target)?;
    let preds = w.learner("predictions", &income, Default::default())?;
    let checked = w.evaluate("checked", &preds, Default::default())?;
    w.output(&checked);
    Ok(w)
}

fn serve(tag: &str, config: ServerConfig) -> ServerHandle {
    let dir = tmpdir(tag);
    let manager =
        Arc::new(SessionManager::with_config(EngineConfig::helix(dir.join("store"))).unwrap());
    let mut registry = WorkflowRegistry::new();
    registry.register("mini", move || mini_workflow(&dir));
    Server::bind(("127.0.0.1", 0), Api::new(manager, registry), config).unwrap()
}

/// The slowloris regression (pre-PR, `handle_connection` had no read
/// timeout): a client that sends half a request and stalls must not
/// starve other analysts — with a single worker, the healthy client is
/// served as soon as the stalled connection times out, and the stalled
/// peer itself gets a `408`.
#[test]
fn slowloris_client_cannot_starve_other_analysts() {
    let mut server = serve(
        "slowloris",
        ServerConfig {
            workers: 1,
            read_timeout: Duration::from_millis(500),
            ..Default::default()
        },
    );
    let addr = server.addr();

    // Half a request, then silence: the single worker is now pinned —
    // but only until the read timeout.
    let mut stalled = TcpStream::connect(addr).unwrap();
    stalled.write_all(b"GET /heal").unwrap();
    stalled.flush().unwrap();
    std::thread::sleep(Duration::from_millis(100));

    let started = Instant::now();
    let healthy = client::get(addr, "/healthz").unwrap();
    assert_eq!(
        healthy.status, 200,
        "a stalled client must not block other analysts"
    );
    assert!(
        started.elapsed() < Duration::from_secs(10),
        "healthy request took {:?} behind a slowloris peer",
        started.elapsed()
    );

    // The stalled peer was answered 408 (mid-request timeout), not
    // silently dropped.
    stalled
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    let mut answer = String::new();
    let _ = stalled.read_to_string(&mut answer);
    assert!(
        answer.starts_with("HTTP/1.1 408"),
        "stalled mid-request peer should see 408, got: {answer:?}"
    );
    server.shutdown();
}

/// An idle keep-alive connection (no request bytes at all) is closed
/// silently at the read timeout — no 408, just EOF — freeing the worker.
#[test]
fn idle_keepalive_connection_is_closed_silently() {
    let mut server = serve(
        "idle-close",
        ServerConfig {
            read_timeout: Duration::from_millis(300),
            ..Default::default()
        },
    );
    let mut conn = TcpStream::connect(server.addr()).unwrap();
    conn.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let mut out = Vec::new();
    let n = conn.read_to_end(&mut out).unwrap();
    assert_eq!(n, 0, "idle connection should see plain EOF, got {out:?}");
    server.shutdown();
}

/// Overload shedding answers `503` from one long-lived shedder thread
/// (pre-PR: a detached thread per shed connection) and counts every
/// shed in `/stats`.
#[test]
fn overload_sheds_deterministic_503s_and_counts_them() {
    let mut server = serve(
        "shed",
        ServerConfig {
            workers: 1,
            queue_depth: 1,
            read_timeout: Duration::from_secs(2),
            ..Default::default()
        },
    );
    let addr = server.addr();

    // Pin the only worker with a stalled half-request for read_timeout.
    let mut stalled = TcpStream::connect(addr).unwrap();
    stalled.write_all(b"GET /heal").unwrap();
    stalled.flush().unwrap();
    std::thread::sleep(Duration::from_millis(100));

    // Occupy the one queue slot with a healthy request; it is served
    // once the stalled connection times out.
    let queued = std::thread::spawn(move || client::get(addr, "/healthz").unwrap());
    std::thread::sleep(Duration::from_millis(100));

    // Worker pinned + queue full: these four must all shed with 503.
    let mut shed_statuses = Vec::new();
    for _ in 0..4 {
        let mut conn = TcpStream::connect(addr).unwrap();
        conn.write_all(b"GET /healthz HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n")
            .unwrap();
        conn.shutdown(std::net::Shutdown::Write).unwrap();
        conn.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let mut raw = String::new();
        let _ = conn.read_to_string(&mut raw);
        shed_statuses.push(raw.lines().next().unwrap_or_default().to_string());
    }
    for status in &shed_statuses {
        assert!(
            status.starts_with("HTTP/1.1 503"),
            "expected 503 shed, got {status:?} (all: {shed_statuses:?})"
        );
    }

    let queued = queued.join().unwrap();
    assert_eq!(queued.status, 200, "queued request served after the stall");

    let stats = client::get(addr, "/stats").unwrap().expect_ok();
    assert_eq!(
        stats.get("shed").and_then(|v| v.as_f64()),
        Some(4.0),
        "every shed connection must be counted: {stats}"
    );
    assert_eq!(server.stats().shed, 4);
    assert_eq!(server.stats().shed_dropped, 0);
    server.shutdown();
}

/// The per-connection request cap bounds how long one analyst can pin a
/// worker: the capped response carries `Connection: close` and the
/// keep-alive client transparently reconnects.
#[test]
fn request_cap_closes_and_client_reconnects() {
    let mut server = serve(
        "reqcap",
        ServerConfig {
            max_requests_per_connection: 2,
            ..Default::default()
        },
    );
    let mut client = Client::new(server.addr());
    for _ in 0..4 {
        assert_eq!(client.get("/healthz").unwrap().status, 200);
    }
    assert_eq!(
        client.connects(),
        2,
        "4 requests at a cap of 2 should use exactly 2 connections"
    );
    server.shutdown();
}

/// With `session_ttl` configured, a session left idle past the TTL is
/// evicted server-side: the name 404s afterwards and the eviction is
/// counted in `/stats`.
#[test]
fn idle_sessions_are_evicted_over_the_wire() {
    let mut server = serve(
        "evict",
        ServerConfig {
            session_ttl: Some(Duration::from_millis(300)),
            ..Default::default()
        },
    );
    let addr = server.addr();
    let created = client::post(addr, "/sessions", r#"{"name":"ghost","workflow":"mini"}"#).unwrap();
    assert_eq!(created.status, 201);
    assert_eq!(client::get(addr, "/sessions/ghost").unwrap().status, 200);

    // Leave it idle well past the TTL (the evictor wakes every TTL/4).
    std::thread::sleep(Duration::from_millis(1200));
    assert_eq!(
        client::get(addr, "/sessions/ghost").unwrap().status,
        404,
        "idle session should have been evicted"
    );
    let stats = client::get(addr, "/stats").unwrap().expect_ok();
    assert_eq!(
        stats.get("sessions_evicted").and_then(|v| v.as_f64()),
        Some(1.0),
        "eviction must be counted: {stats}"
    );
    server.shutdown();
}
