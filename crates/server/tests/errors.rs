//! Error-mapping coverage over real sockets: every documented failure
//! mode returns its documented status code, and the engine stays
//! serviceable afterwards (the next valid request succeeds).

use helix_core::ops::ExtractorKind;
use helix_core::{EngineConfig, SessionManager, Workflow};
use helix_dataflow::DataType;
use helix_server::client;
use helix_server::routes::{Api, WorkflowRegistry};
use helix_server::server::{Server, ServerConfig, ServerHandle};
use std::path::{Path, PathBuf};
use std::sync::Arc;

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("helix-srverr-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A tiny two-feature workflow; `with_bucket` controls whether the
/// `age_bucket` node exists (so replacing a workflow can make a
/// previously valid edit target vanish).
fn mini_workflow(dir: &Path, with_bucket: bool) -> helix_core::Result<Workflow> {
    let train = dir.join("train.csv");
    let test = dir.join("test.csv");
    if !train.exists() {
        std::fs::write(&train, "BS,30,1\nMS,40,0\n".repeat(300)).unwrap();
        std::fs::write(&test, "BS,35,1\nMS,45,0\n".repeat(60)).unwrap();
    }
    let mut w = Workflow::new("mini");
    let data = w.csv_source("data", &train, Some(&test))?;
    let rows = w.csv_scanner(
        "rows",
        &data,
        &[
            ("edu", DataType::Str),
            ("age", DataType::Int),
            ("target", DataType::Int),
        ],
    )?;
    let edu = w.field_extractor("edu_f", &rows, "edu", ExtractorKind::Categorical)?;
    let age = w.field_extractor("age_f", &rows, "age", ExtractorKind::Numeric)?;
    let target = w.field_extractor("target_f", &rows, "target", ExtractorKind::Numeric)?;
    let feature = if with_bucket {
        w.bucketizer("age_bucket", &age, 4)?
    } else {
        age
    };
    let income = w.assemble("income", &rows, &[&edu, &feature], &target)?;
    let preds = w.learner("predictions", &income, Default::default())?;
    let checked = w.evaluate("checked", &preds, Default::default())?;
    w.output(&checked);
    Ok(w)
}

fn serve(tag: &str) -> ServerHandle {
    let dir = tmpdir(tag);
    let manager =
        Arc::new(SessionManager::with_config(EngineConfig::helix(dir.join("store"))).unwrap());
    let mut registry = WorkflowRegistry::new();
    {
        let dir = dir.clone();
        registry.register("mini", move || mini_workflow(&dir, true));
    }
    {
        let dir = dir.clone();
        registry.register("mini-no-bucket", move || mini_workflow(&dir, false));
    }
    Server::bind(
        ("127.0.0.1", 0),
        Api::new(manager, registry),
        ServerConfig {
            workers: 2,
            max_body_bytes: 4096,
            ..Default::default()
        },
    )
    .unwrap()
}

#[test]
fn malformed_json_returns_400_and_server_stays_up() {
    let mut server = serve("badjson");
    let addr = server.addr();

    let resp = client::post(addr, "/sessions", "{not json").unwrap();
    assert_eq!(resp.status, 400);
    assert!(resp.body.get("error").is_some());

    let resp = client::post(addr, "/sessions", r#"{"name":"a","workflow":7}"#).unwrap();
    assert_eq!(resp.status, 400, "non-string workflow field");

    // The server is still serviceable: a valid create succeeds.
    let resp = client::post(addr, "/sessions", r#"{"name":"a","workflow":"mini"}"#).unwrap();
    assert_eq!(resp.status, 201);
    server.shutdown();
}

#[test]
fn unknown_session_and_route_return_404() {
    let mut server = serve("unknown");
    let addr = server.addr();

    for (method, path) in [
        ("POST", "/sessions/ghost/iterate"),
        ("POST", "/sessions/ghost/edits"),
        ("GET", "/sessions/ghost/versions"),
        ("GET", "/sessions/ghost"),
        ("DELETE", "/sessions/ghost"),
    ] {
        let body = if path.ends_with("edits") {
            r#"{"kind":"add_output","node":"income"}"#
        } else {
            ""
        };
        let resp = client::request(addr, method, path, body).unwrap();
        assert_eq!(resp.status, 404, "{method} {path}");
    }

    assert_eq!(client::get(addr, "/no/such/route").unwrap().status, 404);
    // Unknown template on create is also a 404.
    let resp = client::post(addr, "/sessions", r#"{"name":"a","workflow":"nope"}"#).unwrap();
    assert_eq!(resp.status, 404);
    server.shutdown();
}

#[test]
fn edit_after_replace_workflow_maps_to_400_and_session_survives() {
    let mut server = serve("replace");
    let addr = server.addr();

    client::post(addr, "/sessions", r#"{"name":"a","workflow":"mini"}"#)
        .unwrap()
        .expect_ok();
    client::post(addr, "/sessions/a/iterate", "")
        .unwrap()
        .expect_ok();

    // Swap to the bucket-less variant; the old rewire target is gone.
    client::put(
        addr,
        "/sessions/a/workflow",
        r#"{"workflow":"mini-no-bucket"}"#,
    )
    .unwrap()
    .expect_ok();
    let resp = client::post(
        addr,
        "/sessions/a/edits",
        r#"{"kind":"rewire","node":"income","parents":["rows","edu_f","age_bucket","target_f"]}"#,
    )
    .unwrap();
    assert_eq!(
        resp.status, 400,
        "edit addressing a node the replacement lost"
    );
    let msg = resp
        .body
        .get("error")
        .unwrap()
        .as_str()
        .unwrap()
        .to_string();
    assert!(msg.contains("age_bucket"), "error names the node: {msg}");

    // The failed edit left the session serviceable: the next iteration
    // runs the replaced workflow.
    let report = client::post(addr, "/sessions/a/iterate", "")
        .unwrap()
        .expect_ok();
    assert_eq!(report.get("iteration").unwrap().as_u64(), Some(1));
    assert!(report.get("metrics").unwrap().get("accuracy").is_some());
    server.shutdown();
}

#[test]
fn oversized_body_returns_413_without_wedging_the_worker() {
    let mut server = serve("oversize");
    let addr = server.addr();

    let huge = format!(
        r#"{{"name":"a","workflow":"mini","padding":"{}"}}"#,
        "x".repeat(8 * 1024)
    );
    let resp = client::post(addr, "/sessions", &huge).unwrap();
    assert_eq!(resp.status, 413);
    assert!(resp
        .body
        .get("error")
        .unwrap()
        .as_str()
        .unwrap()
        .contains("limit"));

    // Same connection pool keeps serving.
    let resp = client::post(addr, "/sessions", r#"{"name":"a","workflow":"mini"}"#).unwrap();
    assert_eq!(resp.status, 201);
    server.shutdown();
}

#[test]
fn duplicate_session_is_409_and_wrong_method_is_405() {
    let mut server = serve("conflict");
    let addr = server.addr();

    client::post(addr, "/sessions", r#"{"name":"a","workflow":"mini"}"#)
        .unwrap()
        .expect_ok();
    let resp = client::post(addr, "/sessions", r#"{"name":"a","workflow":"mini"}"#).unwrap();
    assert_eq!(resp.status, 409);

    let resp = client::request(addr, "DELETE", "/healthz", "").unwrap();
    assert_eq!(resp.status, 405);
    let resp = client::get(addr, "/sessions/a/iterate").unwrap();
    assert_eq!(resp.status, 405, "iterate is POST-only");
    server.shutdown();
}

#[test]
fn bad_version_and_diff_parameters() {
    let mut server = serve("versions");
    let addr = server.addr();
    client::post(addr, "/sessions", r#"{"name":"a","workflow":"mini"}"#)
        .unwrap()
        .expect_ok();
    client::post(addr, "/sessions/a/iterate", "")
        .unwrap()
        .expect_ok();

    assert_eq!(
        client::get(addr, "/sessions/a/versions/7").unwrap().status,
        404
    );
    assert_eq!(
        client::get(addr, "/sessions/a/versions/x").unwrap().status,
        400
    );
    assert_eq!(client::get(addr, "/sessions/a/diff").unwrap().status, 400);
    assert_eq!(
        client::get(addr, "/sessions/a/diff?from=0&to=9")
            .unwrap()
            .status,
        404
    );
    assert_eq!(
        client::get(addr, "/sessions/a/diff?from=0&to=0")
            .unwrap()
            .status,
        200
    );
    server.shutdown();
}
