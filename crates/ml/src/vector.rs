//! Sparse feature vectors.

use crate::{MlError, Result};

/// A sparse vector stored as sorted `(index, value)` pairs.
///
/// Feature vectors produced by one-hot and bag-of-words extraction are
/// overwhelmingly sparse, so all learners operate on this representation;
/// dense weight vectors live on the model side.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SparseVector {
    indices: Vec<u32>,
    values: Vec<f64>,
}

impl SparseVector {
    /// An all-zero vector.
    pub fn empty() -> Self {
        SparseVector::default()
    }

    /// Builds from parallel index/value slices.
    ///
    /// # Errors
    /// [`MlError::InvalidInput`] if lengths differ, indices are unsorted, or
    /// an index repeats.
    pub fn new(indices: Vec<u32>, values: Vec<f64>) -> Result<Self> {
        if indices.len() != values.len() {
            return Err(MlError::InvalidInput(format!(
                "{} indices but {} values",
                indices.len(),
                values.len()
            )));
        }
        for window in indices.windows(2) {
            if window[0] >= window[1] {
                return Err(MlError::InvalidInput(
                    "indices must be strictly increasing".into(),
                ));
            }
        }
        Ok(SparseVector { indices, values })
    }

    /// Builds from unsorted pairs, summing duplicate indices.
    pub fn from_pairs(mut pairs: Vec<(u32, f64)>) -> Self {
        pairs.sort_unstable_by_key(|&(i, _)| i);
        let mut indices = Vec::with_capacity(pairs.len());
        let mut values = Vec::with_capacity(pairs.len());
        for (i, v) in pairs {
            if indices.last() == Some(&i) {
                *values.last_mut().expect("values parallel to indices") += v;
            } else {
                indices.push(i);
                values.push(v);
            }
        }
        SparseVector { indices, values }
    }

    /// Number of stored (non-zero) entries.
    pub fn nnz(&self) -> usize {
        self.indices.len()
    }

    /// Whether the vector is all zeros.
    pub fn is_empty(&self) -> bool {
        self.indices.is_empty()
    }

    /// Iterator over `(index, value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (u32, f64)> + '_ {
        self.indices
            .iter()
            .copied()
            .zip(self.values.iter().copied())
    }

    /// Largest index plus one, or 0 for an empty vector.
    pub fn width(&self) -> u32 {
        self.indices.last().map(|&i| i + 1).unwrap_or(0)
    }

    /// Dot product against a dense weight slice. Indices beyond the slice
    /// contribute zero (features unseen at training time).
    pub fn dot(&self, dense: &[f64]) -> f64 {
        let mut sum = 0.0;
        for (i, v) in self.iter() {
            if let Some(w) = dense.get(i as usize) {
                sum += w * v;
            }
        }
        sum
    }

    /// Adds `scale * self` into a dense accumulator, growing it as needed.
    pub fn add_scaled_into(&self, scale: f64, dense: &mut Vec<f64>) {
        let needed = self.width() as usize;
        if dense.len() < needed {
            dense.resize(needed, 0.0);
        }
        for (i, v) in self.iter() {
            dense[i as usize] += scale * v;
        }
    }

    /// Euclidean norm.
    pub fn l2_norm(&self) -> f64 {
        self.values.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Value at `index` (zero if absent).
    pub fn get(&self, index: u32) -> f64 {
        match self.indices.binary_search(&index) {
            Ok(pos) => self.values[pos],
            Err(_) => 0.0,
        }
    }

    /// Restricts to indices where `keep(index)` is true — Helix's program
    /// slicer uses this to drop features eliminated by feature selection.
    pub fn retain_indices(&self, keep: impl Fn(u32) -> bool) -> SparseVector {
        let mut indices = Vec::new();
        let mut values = Vec::new();
        for (i, v) in self.iter() {
            if keep(i) {
                indices.push(i);
                values.push(v);
            }
        }
        SparseVector { indices, values }
    }

    /// Serializes into `buf` (varint length + LE pairs).
    pub fn encode_into(&self, buf: &mut Vec<u8>) {
        let n = self.indices.len() as u32;
        buf.extend_from_slice(&n.to_le_bytes());
        for (i, v) in self.iter() {
            buf.extend_from_slice(&i.to_le_bytes());
            buf.extend_from_slice(&v.to_bits().to_le_bytes());
        }
    }

    /// Deserializes from bytes written by [`SparseVector::encode_into`],
    /// returning the vector and bytes consumed.
    pub fn decode_from(bytes: &[u8]) -> Result<(SparseVector, usize)> {
        if bytes.len() < 4 {
            return Err(MlError::Codec("truncated sparse vector header".into()));
        }
        let n = u32::from_le_bytes(bytes[..4].try_into().expect("4 bytes")) as usize;
        let need = 4 + n * 12;
        if bytes.len() < need {
            return Err(MlError::Codec("truncated sparse vector payload".into()));
        }
        let mut indices = Vec::with_capacity(n);
        let mut values = Vec::with_capacity(n);
        let mut pos = 4;
        for _ in 0..n {
            indices.push(u32::from_le_bytes(
                bytes[pos..pos + 4].try_into().expect("4"),
            ));
            values.push(f64::from_bits(u64::from_le_bytes(
                bytes[pos + 4..pos + 12].try_into().expect("8"),
            )));
            pos += 12;
        }
        Ok((SparseVector::new(indices, values)?, pos))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_validates_order_and_duplicates() {
        assert!(SparseVector::new(vec![0, 2, 5], vec![1.0, 2.0, 3.0]).is_ok());
        assert!(SparseVector::new(vec![2, 0], vec![1.0, 2.0]).is_err());
        assert!(SparseVector::new(vec![1, 1], vec![1.0, 2.0]).is_err());
        assert!(SparseVector::new(vec![0], vec![]).is_err());
    }

    #[test]
    fn from_pairs_sorts_and_merges() {
        let v = SparseVector::from_pairs(vec![(5, 1.0), (1, 2.0), (5, 3.0)]);
        assert_eq!(v.nnz(), 2);
        assert_eq!(v.get(5), 4.0);
        assert_eq!(v.get(1), 2.0);
        assert_eq!(v.get(0), 0.0);
    }

    #[test]
    fn dot_ignores_out_of_range() {
        let v = SparseVector::from_pairs(vec![(0, 2.0), (10, 5.0)]);
        let weights = vec![3.0, 0.0, 0.0];
        assert_eq!(v.dot(&weights), 6.0);
    }

    #[test]
    fn add_scaled_grows_accumulator() {
        let v = SparseVector::from_pairs(vec![(3, 2.0)]);
        let mut acc = vec![1.0];
        v.add_scaled_into(0.5, &mut acc);
        assert_eq!(acc, vec![1.0, 0.0, 0.0, 1.0]);
    }

    #[test]
    fn retain_filters_indices() {
        let v = SparseVector::from_pairs(vec![(1, 1.0), (2, 2.0), (3, 3.0)]);
        let kept = v.retain_indices(|i| i % 2 == 1);
        assert_eq!(kept.nnz(), 2);
        assert_eq!(kept.get(2), 0.0);
    }

    #[test]
    fn norm_and_width() {
        let v = SparseVector::from_pairs(vec![(0, 3.0), (4, 4.0)]);
        assert!((v.l2_norm() - 5.0).abs() < 1e-12);
        assert_eq!(v.width(), 5);
        assert_eq!(SparseVector::empty().width(), 0);
    }

    #[test]
    fn codec_round_trip() {
        let v = SparseVector::from_pairs(vec![(0, -1.5), (9, 2.25)]);
        let mut buf = Vec::new();
        v.encode_into(&mut buf);
        let (back, used) = SparseVector::decode_from(&buf).unwrap();
        assert_eq!(back, v);
        assert_eq!(used, buf.len());
        assert!(SparseVector::decode_from(&buf[..5]).is_err());
    }
}
