//! Labeled datasets for training and evaluation.

use crate::vector::SparseVector;
use crate::{MlError, Result};

/// One training or evaluation example.
#[derive(Debug, Clone, PartialEq)]
pub struct LabeledExample {
    /// Sparse feature vector.
    pub features: SparseVector,
    /// Label: 0/1 for binary classification, a real value for regression,
    /// a class index (as `f64`) for multi-class.
    pub label: f64,
}

/// A set of labeled examples with a fixed feature dimensionality.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Dataset {
    examples: Vec<LabeledExample>,
    dim: u32,
}

impl Dataset {
    /// Builds a dataset; `dim` is the max of the declared dimensionality
    /// and what the examples actually use.
    pub fn new(examples: Vec<LabeledExample>, dim: u32) -> Self {
        let used = examples
            .iter()
            .map(|ex| ex.features.width())
            .max()
            .unwrap_or(0);
        Dataset {
            examples,
            dim: dim.max(used),
        }
    }

    /// The examples.
    pub fn examples(&self) -> &[LabeledExample] {
        &self.examples
    }

    /// Feature dimensionality.
    pub fn dim(&self) -> u32 {
        self.dim
    }

    /// Number of examples.
    pub fn len(&self) -> usize {
        self.examples.len()
    }

    /// Whether there are no examples.
    pub fn is_empty(&self) -> bool {
        self.examples.is_empty()
    }

    /// Fails when the dataset cannot be trained on.
    pub fn check_trainable(&self) -> Result<()> {
        if self.examples.is_empty() {
            return Err(MlError::InvalidInput("empty dataset".into()));
        }
        Ok(())
    }

    /// Fraction of examples with label `1.0` (binary-classification prior).
    pub fn positive_rate(&self) -> f64 {
        if self.examples.is_empty() {
            return 0.0;
        }
        let positives = self.examples.iter().filter(|ex| ex.label == 1.0).count();
        positives as f64 / self.examples.len() as f64
    }

    /// Splits into `(first, second)` at `index`.
    pub fn split_at(&self, index: usize) -> (Dataset, Dataset) {
        let index = index.min(self.examples.len());
        let (a, b) = self.examples.split_at(index);
        (
            Dataset::new(a.to_vec(), self.dim),
            Dataset::new(b.to_vec(), self.dim),
        )
    }

    /// Returns the subset at the given example indices.
    pub fn subset(&self, indices: &[usize]) -> Dataset {
        let examples = indices.iter().map(|&i| self.examples[i].clone()).collect();
        Dataset::new(examples, self.dim)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ex(idx: u32, label: f64) -> LabeledExample {
        LabeledExample {
            features: SparseVector::from_pairs(vec![(idx, 1.0)]),
            label,
        }
    }

    #[test]
    fn dim_expands_to_cover_examples() {
        let ds = Dataset::new(vec![ex(9, 1.0)], 3);
        assert_eq!(ds.dim(), 10);
        let ds = Dataset::new(vec![ex(1, 0.0)], 30);
        assert_eq!(ds.dim(), 30);
    }

    #[test]
    fn positive_rate_counts_ones() {
        let ds = Dataset::new(vec![ex(0, 1.0), ex(1, 0.0), ex(2, 1.0), ex(3, 0.0)], 4);
        assert_eq!(ds.positive_rate(), 0.5);
        assert_eq!(Dataset::default().positive_rate(), 0.0);
    }

    #[test]
    fn empty_dataset_not_trainable() {
        assert!(Dataset::default().check_trainable().is_err());
        assert!(Dataset::new(vec![ex(0, 1.0)], 1).check_trainable().is_ok());
    }

    #[test]
    fn split_and_subset() {
        let ds = Dataset::new(vec![ex(0, 0.0), ex(1, 1.0), ex(2, 0.0)], 3);
        let (a, b) = ds.split_at(2);
        assert_eq!(a.len(), 2);
        assert_eq!(b.len(), 1);
        let sub = ds.subset(&[2, 0]);
        assert_eq!(sub.len(), 2);
        assert_eq!(sub.examples()[0], ds.examples()[2]);
    }
}
