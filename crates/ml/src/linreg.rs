//! Linear regression (ridge) trained with SGD.
//!
//! Included because the paper positions Census-style workflows as
//! "covariate analysis" for social/natural sciences (§3); regression over
//! the same feature pipeline is the natural second learner and exercises
//! the DSL's `modelType` knob.

use crate::dataset::Dataset;
use crate::vector::SparseVector;
use crate::Result;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Hyperparameters for [`train`].
#[derive(Debug, Clone, PartialEq)]
pub struct LinRegConfig {
    /// Number of passes over the data.
    pub epochs: usize,
    /// Base learning rate (decayed per epoch).
    pub learning_rate: f64,
    /// L2 (ridge) strength.
    pub reg_param: f64,
    /// Shuffle seed.
    pub seed: u64,
}

impl Default for LinRegConfig {
    fn default() -> Self {
        LinRegConfig {
            epochs: 15,
            learning_rate: 0.1,
            reg_param: 0.01,
            seed: 42,
        }
    }
}

/// A trained linear-regression model.
#[derive(Debug, Clone, PartialEq)]
pub struct LinRegModel {
    /// Per-feature weights.
    pub weights: Vec<f64>,
    /// Intercept.
    pub bias: f64,
    /// Training config (provenance).
    pub config: LinRegConfig,
}

impl LinRegModel {
    /// Predicted value.
    pub fn predict(&self, features: &SparseVector) -> f64 {
        features.dot(&self.weights) + self.bias
    }
}

/// Trains a ridge-regression model.
///
/// # Errors
/// [`crate::MlError::InvalidInput`] if the dataset is empty.
pub fn train(dataset: &Dataset, config: &LinRegConfig) -> Result<LinRegModel> {
    dataset.check_trainable()?;
    let dim = dataset.dim() as usize;
    let mut weights = vec![0.0; dim];
    let mut bias = 0.0;
    let n = dataset.len() as f64;
    let mut order: Vec<usize> = (0..dataset.len()).collect();
    let mut rng = rand::rngs::StdRng::seed_from_u64(config.seed);

    for epoch in 0..config.epochs {
        order.shuffle(&mut rng);
        let lr = config.learning_rate / (1.0 + epoch as f64);
        for &idx in &order {
            let ex = &dataset.examples()[idx];
            let err = ex.features.dot(&weights) + bias - ex.label;
            for (i, v) in ex.features.iter() {
                let w = &mut weights[i as usize];
                *w -= lr * (err * v + config.reg_param * *w / n);
            }
            bias -= lr * err;
        }
    }
    Ok(LinRegModel {
        weights,
        bias,
        config: config.clone(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::LabeledExample;

    /// y = 2*x0 - 3*x1 + 1 with x in {0,1}^2.
    fn toy() -> Dataset {
        let mut examples = Vec::new();
        for (x0, x1) in [(0.0, 0.0), (1.0, 0.0), (0.0, 1.0), (1.0, 1.0)] {
            for _ in 0..25 {
                let features = SparseVector::from_pairs(vec![(0, x0), (1, x1)]);
                examples.push(LabeledExample {
                    features,
                    label: 2.0 * x0 - 3.0 * x1 + 1.0,
                });
            }
        }
        Dataset::new(examples, 2)
    }

    #[test]
    fn recovers_linear_coefficients() {
        let model = train(
            &toy(),
            &LinRegConfig {
                epochs: 200,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(
            (model.weights[0] - 2.0).abs() < 0.1,
            "w0 = {}",
            model.weights[0]
        );
        assert!(
            (model.weights[1] + 3.0).abs() < 0.1,
            "w1 = {}",
            model.weights[1]
        );
        assert!((model.bias - 1.0).abs() < 0.1, "b = {}", model.bias);
    }

    #[test]
    fn deterministic_given_seed() {
        assert_eq!(
            train(&toy(), &LinRegConfig::default()).unwrap(),
            train(&toy(), &LinRegConfig::default()).unwrap()
        );
    }

    #[test]
    fn empty_dataset_rejected() {
        assert!(train(&Dataset::default(), &LinRegConfig::default()).is_err());
    }
}
