//! Binary logistic regression trained with mini-batch SGD + L2.
//!
//! This is the learner behind the paper's Census workflow
//! (`new Learner(modelType, regParam=0.1)`, Fig. 1a line 16). The
//! `reg_param` knob is exactly what the paper's "ML iteration" changes
//! (§1: "changing the regularization parameter should only retrain the
//! model but not rerun data pre-processing").

use crate::dataset::Dataset;
use crate::vector::SparseVector;
use crate::Result;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Hyperparameters for [`train`].
#[derive(Debug, Clone, PartialEq)]
pub struct LogRegConfig {
    /// Number of passes over the data.
    pub epochs: usize,
    /// Base learning rate (decayed as `lr / (1 + epoch)`).
    pub learning_rate: f64,
    /// L2 regularization strength (`regParam` in the paper's DSL).
    pub reg_param: f64,
    /// RNG seed for shuffling; fixed seed ⇒ deterministic training, which
    /// Helix requires for reuse correctness.
    pub seed: u64,
}

impl Default for LogRegConfig {
    fn default() -> Self {
        LogRegConfig {
            epochs: 10,
            learning_rate: 0.5,
            reg_param: 0.1,
            seed: 42,
        }
    }
}

/// A trained logistic-regression model.
#[derive(Debug, Clone, PartialEq)]
pub struct LogRegModel {
    /// Per-feature weights.
    pub weights: Vec<f64>,
    /// Intercept.
    pub bias: f64,
    /// The config used to train (kept for provenance / version diffing).
    pub config: LogRegConfig,
}

impl LogRegModel {
    /// P(label = 1 | features).
    pub fn predict_proba(&self, features: &SparseVector) -> f64 {
        sigmoid(features.dot(&self.weights) + self.bias)
    }

    /// Hard 0/1 prediction at threshold 0.5.
    pub fn predict(&self, features: &SparseVector) -> f64 {
        if self.predict_proba(features) >= 0.5 {
            1.0
        } else {
            0.0
        }
    }
}

#[inline]
fn sigmoid(z: f64) -> f64 {
    // Numerically stable in both tails.
    if z >= 0.0 {
        let e = (-z).exp();
        1.0 / (1.0 + e)
    } else {
        let e = z.exp();
        e / (1.0 + e)
    }
}

/// Trains a model on a dataset with labels in {0, 1}.
///
/// # Errors
/// [`crate::MlError::InvalidInput`] if the dataset is empty.
pub fn train(dataset: &Dataset, config: &LogRegConfig) -> Result<LogRegModel> {
    dataset.check_trainable()?;
    let dim = dataset.dim() as usize;
    let mut weights = vec![0.0; dim];
    let mut bias = 0.0;
    let n = dataset.len() as f64;
    let mut order: Vec<usize> = (0..dataset.len()).collect();
    let mut rng = rand::rngs::StdRng::seed_from_u64(config.seed);

    for epoch in 0..config.epochs {
        order.shuffle(&mut rng);
        let lr = config.learning_rate / (1.0 + epoch as f64);
        for &idx in &order {
            let ex = &dataset.examples()[idx];
            let p = sigmoid(ex.features.dot(&weights) + bias);
            let err = p - ex.label;
            // L2 gradient applied only to touched coordinates plus a global
            // shrink folded into the per-example step: standard sparse trick
            // approximated by shrinking touched weights (keeps the loop
            // O(nnz); exactness is irrelevant to Helix's systems claims).
            for (i, v) in ex.features.iter() {
                let w = &mut weights[i as usize];
                *w -= lr * (err * v + config.reg_param * *w / n);
            }
            bias -= lr * err;
        }
    }
    Ok(LogRegModel {
        weights,
        bias,
        config: config.clone(),
    })
}

/// Log-likelihood of the dataset under the model (for convergence tests).
pub fn log_likelihood(model: &LogRegModel, dataset: &Dataset) -> f64 {
    dataset
        .examples()
        .iter()
        .map(|ex| {
            let p = model.predict_proba(&ex.features).clamp(1e-12, 1.0 - 1e-12);
            if ex.label == 1.0 {
                p.ln()
            } else {
                (1.0 - p).ln()
            }
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::LabeledExample;

    /// Linearly separable toy data: label = [x0 present].
    fn toy() -> Dataset {
        let mut examples = Vec::new();
        for i in 0..100 {
            let positive = i % 2 == 0;
            let features = if positive {
                SparseVector::from_pairs(vec![(0, 1.0), (2, 0.5)])
            } else {
                SparseVector::from_pairs(vec![(1, 1.0), (2, 0.5)])
            };
            examples.push(LabeledExample {
                features,
                label: if positive { 1.0 } else { 0.0 },
            });
        }
        Dataset::new(examples, 3)
    }

    #[test]
    fn learns_separable_data() {
        let model = train(&toy(), &LogRegConfig::default()).unwrap();
        let pos = SparseVector::from_pairs(vec![(0, 1.0)]);
        let neg = SparseVector::from_pairs(vec![(1, 1.0)]);
        assert!(model.predict_proba(&pos) > 0.9);
        assert!(model.predict_proba(&neg) < 0.1);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = train(&toy(), &LogRegConfig::default()).unwrap();
        let b = train(&toy(), &LogRegConfig::default()).unwrap();
        assert_eq!(a, b);
        let c = train(
            &toy(),
            &LogRegConfig {
                seed: 7,
                ..Default::default()
            },
        )
        .unwrap();
        assert_ne!(a.weights, c.weights);
    }

    #[test]
    fn stronger_regularization_shrinks_weights() {
        let weak = train(
            &toy(),
            &LogRegConfig {
                reg_param: 0.0,
                ..Default::default()
            },
        )
        .unwrap();
        let strong = train(
            &toy(),
            &LogRegConfig {
                reg_param: 50.0,
                ..Default::default()
            },
        )
        .unwrap();
        let norm = |w: &[f64]| w.iter().map(|x| x * x).sum::<f64>().sqrt();
        assert!(norm(&strong.weights) < norm(&weak.weights));
    }

    #[test]
    fn empty_dataset_rejected() {
        assert!(train(&Dataset::default(), &LogRegConfig::default()).is_err());
    }

    #[test]
    fn more_epochs_do_not_hurt_likelihood_much() {
        let short = train(
            &toy(),
            &LogRegConfig {
                epochs: 1,
                ..Default::default()
            },
        )
        .unwrap();
        let long = train(
            &toy(),
            &LogRegConfig {
                epochs: 20,
                ..Default::default()
            },
        )
        .unwrap();
        let ds = toy();
        assert!(log_likelihood(&long, &ds) >= log_likelihood(&short, &ds) - 1e-6);
    }

    #[test]
    fn sigmoid_is_stable_in_tails() {
        assert_eq!(sigmoid(1000.0), 1.0);
        assert_eq!(sigmoid(-1000.0), 0.0);
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn predict_unseen_features_uses_bias_only() {
        let model = train(&toy(), &LogRegConfig::default()).unwrap();
        let unseen = SparseVector::from_pairs(vec![(999, 1.0)]);
        let p = model.predict_proba(&unseen);
        assert!((p - sigmoid(model.bias)).abs() < 1e-12);
    }
}
