//! Train/test splitting and k-fold cross validation.

use crate::dataset::Dataset;
use crate::{MlError, Result};
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Shuffles and splits a dataset into `(train, test)` with `test_fraction`
/// of examples in the test set.
///
/// # Errors
/// [`MlError::InvalidInput`] if the fraction is outside `(0, 1)`.
pub fn train_test_split(
    dataset: &Dataset,
    test_fraction: f64,
    seed: u64,
) -> Result<(Dataset, Dataset)> {
    if !(0.0..1.0).contains(&test_fraction) || test_fraction == 0.0 {
        return Err(MlError::InvalidInput(format!(
            "test_fraction must be in (0, 1), got {test_fraction}"
        )));
    }
    let mut indices: Vec<usize> = (0..dataset.len()).collect();
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    indices.shuffle(&mut rng);
    let test_size = ((dataset.len() as f64) * test_fraction).round() as usize;
    let (test_idx, train_idx) = indices.split_at(test_size.min(dataset.len()));
    Ok((dataset.subset(train_idx), dataset.subset(test_idx)))
}

/// Yields `k` `(train, test)` folds.
///
/// # Errors
/// [`MlError::InvalidInput`] if `k < 2` or `k` exceeds the dataset size.
pub fn k_folds(dataset: &Dataset, k: usize, seed: u64) -> Result<Vec<(Dataset, Dataset)>> {
    if k < 2 {
        return Err(MlError::InvalidInput(format!("k must be ≥ 2, got {k}")));
    }
    if k > dataset.len() {
        return Err(MlError::InvalidInput(format!(
            "k = {k} exceeds dataset size {}",
            dataset.len()
        )));
    }
    let mut indices: Vec<usize> = (0..dataset.len()).collect();
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    indices.shuffle(&mut rng);
    let mut folds = Vec::with_capacity(k);
    for fold in 0..k {
        let test_idx: Vec<usize> = indices.iter().copied().skip(fold).step_by(k).collect();
        let train_idx: Vec<usize> = indices
            .iter()
            .copied()
            .enumerate()
            .filter(|(pos, _)| pos % k != fold)
            .map(|(_, idx)| idx)
            .collect();
        folds.push((dataset.subset(&train_idx), dataset.subset(&test_idx)));
    }
    Ok(folds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::LabeledExample;
    use crate::vector::SparseVector;

    fn ds(n: usize) -> Dataset {
        let examples = (0..n)
            .map(|i| LabeledExample {
                features: SparseVector::from_pairs(vec![(0, i as f64)]),
                label: (i % 2) as f64,
            })
            .collect();
        Dataset::new(examples, 1)
    }

    #[test]
    fn split_sizes_add_up() {
        let (train, test) = train_test_split(&ds(100), 0.25, 1).unwrap();
        assert_eq!(test.len(), 25);
        assert_eq!(train.len(), 75);
    }

    #[test]
    fn split_is_deterministic_per_seed() {
        let (a, _) = train_test_split(&ds(50), 0.2, 9).unwrap();
        let (b, _) = train_test_split(&ds(50), 0.2, 9).unwrap();
        assert_eq!(a, b);
        let (c, _) = train_test_split(&ds(50), 0.2, 10).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn split_rejects_bad_fraction() {
        assert!(train_test_split(&ds(10), 0.0, 1).is_err());
        assert!(train_test_split(&ds(10), 1.0, 1).is_err());
        assert!(train_test_split(&ds(10), -0.5, 1).is_err());
    }

    #[test]
    fn folds_partition_the_data() {
        let folds = k_folds(&ds(20), 4, 3).unwrap();
        assert_eq!(folds.len(), 4);
        let total_test: usize = folds.iter().map(|(_, test)| test.len()).sum();
        assert_eq!(total_test, 20);
        for (train, test) in &folds {
            assert_eq!(train.len() + test.len(), 20);
        }
    }

    #[test]
    fn folds_reject_bad_k() {
        assert!(k_folds(&ds(10), 1, 0).is_err());
        assert!(k_folds(&ds(3), 5, 0).is_err());
    }
}
