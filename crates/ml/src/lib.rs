//! Machine-learning substrate for Helix.
//!
//! The paper's `Learner` and `Reducer` operators (Fig. 1a lines 16–21) are
//! backed by this crate: sparse feature vectors, a dictionary-interning
//! [`FeatureSpace`] that converts Helix's
//! human-readable pre-processing output into ML-ready vectors (§2.1), a
//! small family of learners (logistic regression, linear regression,
//! Bernoulli naive Bayes, averaged perceptron), evaluation metrics, and
//! cross-validation helpers.
//!
//! Models implement a compact binary encoding ([`model::Model::encode`]) so
//! that *trained models are first-class intermediate results*: Helix's
//! materialization optimizer can persist and reload them like any other
//! node output.

#![warn(missing_docs)]

pub mod cv;
pub mod dataset;
pub mod error;
pub mod features;
pub mod linreg;
pub mod logreg;
pub mod metrics;
pub mod model;
pub mod naive_bayes;
pub mod perceptron;
pub mod scaler;
pub mod vector;

pub use dataset::{Dataset, LabeledExample};
pub use error::MlError;
pub use features::FeatureSpace;
pub use model::Model;
pub use vector::SparseVector;

/// Convenience alias used throughout the substrate.
pub type Result<T> = std::result::Result<T, MlError>;
