//! Standardization of numeric feature columns.
//!
//! One-hot features are left alone by the workflows, but numeric columns
//! (age, hours-per-week, capital-loss) benefit from zero-mean/unit-variance
//! scaling before SGD. The scaler is itself a deterministic function of its
//! input, so it composes with Helix's reuse machinery like any operator.

use crate::dataset::{Dataset, LabeledExample};
use crate::vector::SparseVector;

/// Per-dimension mean/standard-deviation statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct StandardScaler {
    /// Per-dimension means of stored values.
    pub mean: Vec<f64>,
    /// Per-dimension standard deviations (1.0 where degenerate).
    pub std: Vec<f64>,
    /// Which dimensions to scale; others pass through untouched.
    pub scaled_dims: Vec<bool>,
}

impl StandardScaler {
    /// Fits statistics over the dataset for the selected dimensions.
    ///
    /// Statistics are computed over *stored* (non-zero) entries: for sparse
    /// one-hot data, scaling zeros would destroy sparsity.
    pub fn fit(dataset: &Dataset, scale_dims: &[u32]) -> StandardScaler {
        let dim = dataset.dim() as usize;
        let mut scaled_dims = vec![false; dim];
        for &d in scale_dims {
            if (d as usize) < dim {
                scaled_dims[d as usize] = true;
            }
        }
        let mut sum = vec![0.0f64; dim];
        let mut sum_sq = vec![0.0f64; dim];
        let mut count = vec![0usize; dim];
        for ex in dataset.examples() {
            for (i, v) in ex.features.iter() {
                let i = i as usize;
                if scaled_dims[i] {
                    sum[i] += v;
                    sum_sq[i] += v * v;
                    count[i] += 1;
                }
            }
        }
        let mut mean = vec![0.0f64; dim];
        let mut std = vec![1.0f64; dim];
        for i in 0..dim {
            if scaled_dims[i] && count[i] > 1 {
                mean[i] = sum[i] / count[i] as f64;
                let var = (sum_sq[i] / count[i] as f64 - mean[i] * mean[i]).max(0.0);
                std[i] = if var > 1e-24 { var.sqrt() } else { 1.0 };
            }
        }
        StandardScaler {
            mean,
            std,
            scaled_dims,
        }
    }

    /// Applies the transform to one vector.
    pub fn transform(&self, features: &SparseVector) -> SparseVector {
        let pairs = features
            .iter()
            .map(|(i, v)| {
                let idx = i as usize;
                if idx < self.scaled_dims.len() && self.scaled_dims[idx] {
                    (i, (v - self.mean[idx]) / self.std[idx])
                } else {
                    (i, v)
                }
            })
            .collect();
        SparseVector::from_pairs(pairs)
    }

    /// Applies the transform to a whole dataset.
    pub fn transform_dataset(&self, dataset: &Dataset) -> Dataset {
        let examples = dataset
            .examples()
            .iter()
            .map(|ex| LabeledExample {
                features: self.transform(&ex.features),
                label: ex.label,
            })
            .collect();
        Dataset::new(examples, dataset.dim())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ds() -> Dataset {
        let examples = (0..10)
            .map(|i| LabeledExample {
                features: SparseVector::from_pairs(vec![(0, i as f64), (1, 1.0)]),
                label: 0.0,
            })
            .collect();
        Dataset::new(examples, 2)
    }

    #[test]
    fn scaled_dimension_has_zero_mean_unit_variance() {
        let scaler = StandardScaler::fit(&ds(), &[0]);
        let out = scaler.transform_dataset(&ds());
        let values: Vec<f64> = out.examples().iter().map(|ex| ex.features.get(0)).collect();
        let mean: f64 = values.iter().sum::<f64>() / values.len() as f64;
        let var: f64 =
            values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / values.len() as f64;
        assert!(mean.abs() < 1e-9);
        assert!((var - 1.0).abs() < 1e-9);
    }

    #[test]
    fn unscaled_dimension_passes_through() {
        let scaler = StandardScaler::fit(&ds(), &[0]);
        let out = scaler.transform_dataset(&ds());
        assert!(out.examples().iter().all(|ex| ex.features.get(1) == 1.0));
    }

    #[test]
    fn constant_column_does_not_divide_by_zero() {
        let scaler = StandardScaler::fit(&ds(), &[1]);
        let out = scaler.transform(&SparseVector::from_pairs(vec![(1, 1.0)]));
        assert!(out.get(1).is_finite());
    }

    #[test]
    fn out_of_range_dims_ignored() {
        let scaler = StandardScaler::fit(&ds(), &[99]);
        let v = SparseVector::from_pairs(vec![(0, 5.0)]);
        assert_eq!(scaler.transform(&v), v);
    }
}
