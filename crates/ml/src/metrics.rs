//! Evaluation metrics.
//!
//! These back the paper's `Reducer` operators ("checkResults", Fig. 1a
//! line 18) and the Metrics tab of the versioning UI (§3.1): every
//! iteration's metric values are recorded against the workflow version that
//! produced them.

use crate::{MlError, Result};

/// A binary confusion matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Confusion {
    /// True positives.
    pub tp: u64,
    /// False positives.
    pub fp: u64,
    /// True negatives.
    pub tn: u64,
    /// False negatives.
    pub fn_: u64,
}

impl Confusion {
    /// Tallies predictions against gold labels (both 0/1).
    ///
    /// # Errors
    /// [`MlError::InvalidInput`] if lengths differ.
    pub fn from_predictions(predictions: &[f64], labels: &[f64]) -> Result<Confusion> {
        if predictions.len() != labels.len() {
            return Err(MlError::InvalidInput(format!(
                "{} predictions vs {} labels",
                predictions.len(),
                labels.len()
            )));
        }
        let mut c = Confusion::default();
        for (&p, &l) in predictions.iter().zip(labels) {
            match (p >= 0.5, l >= 0.5) {
                (true, true) => c.tp += 1,
                (true, false) => c.fp += 1,
                (false, false) => c.tn += 1,
                (false, true) => c.fn_ += 1,
            }
        }
        Ok(c)
    }

    /// Fraction correct.
    pub fn accuracy(&self) -> f64 {
        let total = self.tp + self.fp + self.tn + self.fn_;
        if total == 0 {
            return 0.0;
        }
        (self.tp + self.tn) as f64 / total as f64
    }

    /// Precision of the positive class (1.0 when nothing was predicted
    /// positive, by convention).
    pub fn precision(&self) -> f64 {
        let denom = self.tp + self.fp;
        if denom == 0 {
            return 1.0;
        }
        self.tp as f64 / denom as f64
    }

    /// Recall of the positive class (1.0 when there are no positives).
    pub fn recall(&self) -> f64 {
        let denom = self.tp + self.fn_;
        if denom == 0 {
            return 1.0;
        }
        self.tp as f64 / denom as f64
    }

    /// Harmonic mean of precision and recall.
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            return 0.0;
        }
        2.0 * p * r / (p + r)
    }
}

/// Fraction of exact prediction/label matches.
pub fn accuracy(predictions: &[f64], labels: &[f64]) -> Result<f64> {
    Ok(Confusion::from_predictions(predictions, labels)?.accuracy())
}

/// Mean negative log-likelihood of probabilistic predictions.
pub fn log_loss(probabilities: &[f64], labels: &[f64]) -> Result<f64> {
    if probabilities.len() != labels.len() {
        return Err(MlError::InvalidInput("length mismatch".into()));
    }
    if probabilities.is_empty() {
        return Ok(0.0);
    }
    let total: f64 = probabilities
        .iter()
        .zip(labels)
        .map(|(&p, &l)| {
            let p = p.clamp(1e-12, 1.0 - 1e-12);
            if l >= 0.5 {
                -p.ln()
            } else {
                -(1.0 - p).ln()
            }
        })
        .sum();
    Ok(total / probabilities.len() as f64)
}

/// Root mean squared error for regression.
pub fn rmse(predictions: &[f64], labels: &[f64]) -> Result<f64> {
    if predictions.len() != labels.len() {
        return Err(MlError::InvalidInput("length mismatch".into()));
    }
    if predictions.is_empty() {
        return Ok(0.0);
    }
    let mse: f64 = predictions
        .iter()
        .zip(labels)
        .map(|(&p, &l)| (p - l) * (p - l))
        .sum::<f64>()
        / predictions.len() as f64;
    Ok(mse.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn confusion_counts_cells() {
        let c = Confusion::from_predictions(&[1.0, 1.0, 0.0, 0.0], &[1.0, 0.0, 0.0, 1.0]).unwrap();
        assert_eq!(
            c,
            Confusion {
                tp: 1,
                fp: 1,
                tn: 1,
                fn_: 1
            }
        );
        assert_eq!(c.accuracy(), 0.5);
        assert_eq!(c.precision(), 0.5);
        assert_eq!(c.recall(), 0.5);
        assert_eq!(c.f1(), 0.5);
    }

    #[test]
    fn degenerate_cases_use_conventions() {
        let empty = Confusion::default();
        assert_eq!(empty.accuracy(), 0.0);
        assert_eq!(empty.precision(), 1.0);
        assert_eq!(empty.recall(), 1.0);
        assert_eq!(empty.f1(), 1.0);
        let all_negative = Confusion {
            tn: 5,
            ..Default::default()
        };
        assert_eq!(all_negative.accuracy(), 1.0);
    }

    #[test]
    fn length_mismatch_is_an_error() {
        assert!(Confusion::from_predictions(&[1.0], &[]).is_err());
        assert!(log_loss(&[0.5], &[]).is_err());
        assert!(rmse(&[0.5], &[]).is_err());
    }

    #[test]
    fn log_loss_prefers_confident_correct() {
        let good = log_loss(&[0.99, 0.01], &[1.0, 0.0]).unwrap();
        let bad = log_loss(&[0.6, 0.4], &[1.0, 0.0]).unwrap();
        assert!(good < bad);
        let extreme = log_loss(&[0.0], &[1.0]).unwrap();
        assert!(extreme.is_finite());
    }

    #[test]
    fn rmse_basic() {
        assert_eq!(rmse(&[1.0, 2.0], &[1.0, 2.0]).unwrap(), 0.0);
        assert!((rmse(&[0.0, 0.0], &[3.0, 4.0]).unwrap() - (12.5f64).sqrt()).abs() < 1e-12);
        assert_eq!(rmse(&[], &[]).unwrap(), 0.0);
    }

    #[test]
    fn accuracy_shortcut_matches_confusion() {
        let preds = [1.0, 0.0, 1.0];
        let labels = [1.0, 1.0, 1.0];
        assert!((accuracy(&preds, &labels).unwrap() - 2.0 / 3.0).abs() < 1e-12);
    }
}
