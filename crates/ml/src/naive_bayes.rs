//! Bernoulli naive Bayes for binary features.
//!
//! A cheap, closed-form learner: useful both as an alternative `modelType`
//! in the DSL and in tests, because training cost is a single counting pass
//! (so ML-iteration runtimes in benches are dominated by the workflow, not
//! the optimizer).

use crate::dataset::Dataset;
use crate::vector::SparseVector;
use crate::{MlError, Result};

/// Smoothing and dimensionality settings.
#[derive(Debug, Clone, PartialEq)]
pub struct NaiveBayesConfig {
    /// Laplace smoothing constant.
    pub alpha: f64,
}

impl Default for NaiveBayesConfig {
    fn default() -> Self {
        NaiveBayesConfig { alpha: 1.0 }
    }
}

/// A trained Bernoulli naive-Bayes model.
#[derive(Debug, Clone, PartialEq)]
pub struct NaiveBayesModel {
    /// log P(feature present | class), per class (0 and 1), per feature.
    pub log_prob_present: [Vec<f64>; 2],
    /// log P(feature absent | class).
    pub log_prob_absent: [Vec<f64>; 2],
    /// log class priors.
    pub log_prior: [f64; 2],
}

impl NaiveBayesModel {
    /// P(label = 1 | features), treating any non-zero value as "present".
    pub fn predict_proba(&self, features: &SparseVector) -> f64 {
        let mut scores = [self.log_prior[0], self.log_prior[1]];
        for (class, score) in scores.iter_mut().enumerate() {
            // Start from the all-absent baseline, then correct per present
            // feature: O(nnz) instead of O(dim).
            let baseline: f64 = self.log_prob_absent[class].iter().sum();
            *score += baseline;
            for (i, v) in features.iter() {
                if v != 0.0 {
                    if let (Some(p), Some(a)) = (
                        self.log_prob_present[class].get(i as usize),
                        self.log_prob_absent[class].get(i as usize),
                    ) {
                        *score += p - a;
                    }
                }
            }
        }
        let max = scores[0].max(scores[1]);
        let e0 = (scores[0] - max).exp();
        let e1 = (scores[1] - max).exp();
        e1 / (e0 + e1)
    }

    /// Hard 0/1 prediction.
    pub fn predict(&self, features: &SparseVector) -> f64 {
        if self.predict_proba(features) >= 0.5 {
            1.0
        } else {
            0.0
        }
    }
}

/// Trains on labels in {0, 1}.
///
/// # Errors
/// [`MlError::InvalidInput`] if the dataset is empty or a label is not 0/1.
pub fn train(dataset: &Dataset, config: &NaiveBayesConfig) -> Result<NaiveBayesModel> {
    dataset.check_trainable()?;
    let dim = dataset.dim() as usize;
    let mut present = [vec![0.0f64; dim], vec![0.0f64; dim]];
    let mut counts = [0usize; 2];
    for ex in dataset.examples() {
        let class = if ex.label == 0.0 {
            0
        } else if ex.label == 1.0 {
            1
        } else {
            return Err(MlError::InvalidInput(format!(
                "naive Bayes requires 0/1 labels, got {}",
                ex.label
            )));
        };
        counts[class] += 1;
        for (i, v) in ex.features.iter() {
            if v != 0.0 {
                present[class][i as usize] += 1.0;
            }
        }
    }
    let total = dataset.len() as f64;
    let alpha = config.alpha;
    let mut log_prob_present = [vec![0.0; dim], vec![0.0; dim]];
    let mut log_prob_absent = [vec![0.0; dim], vec![0.0; dim]];
    for class in 0..2 {
        let denom = counts[class] as f64 + 2.0 * alpha;
        for feature in 0..dim {
            let p = (present[class][feature] + alpha) / denom;
            log_prob_present[class][feature] = p.ln();
            log_prob_absent[class][feature] = (1.0 - p).ln();
        }
    }
    // Smooth priors too so a single-class dataset still predicts sanely.
    let log_prior = [
        ((counts[0] as f64 + alpha) / (total + 2.0 * alpha)).ln(),
        ((counts[1] as f64 + alpha) / (total + 2.0 * alpha)).ln(),
    ];
    Ok(NaiveBayesModel {
        log_prob_present,
        log_prob_absent,
        log_prior,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::LabeledExample;

    fn toy() -> Dataset {
        let mut examples = Vec::new();
        for i in 0..200 {
            let positive = i % 2 == 0;
            let features = if positive {
                SparseVector::from_pairs(vec![(0, 1.0)])
            } else {
                SparseVector::from_pairs(vec![(1, 1.0)])
            };
            examples.push(LabeledExample {
                features,
                label: if positive { 1.0 } else { 0.0 },
            });
        }
        Dataset::new(examples, 2)
    }

    #[test]
    fn separable_data_classified_correctly() {
        let model = train(&toy(), &NaiveBayesConfig::default()).unwrap();
        assert_eq!(
            model.predict(&SparseVector::from_pairs(vec![(0, 1.0)])),
            1.0
        );
        assert_eq!(
            model.predict(&SparseVector::from_pairs(vec![(1, 1.0)])),
            0.0
        );
    }

    #[test]
    fn rejects_non_binary_labels() {
        let ds = Dataset::new(
            vec![LabeledExample {
                features: SparseVector::empty(),
                label: 2.0,
            }],
            1,
        );
        assert!(train(&ds, &NaiveBayesConfig::default()).is_err());
    }

    #[test]
    fn single_class_dataset_does_not_panic() {
        let ds = Dataset::new(
            vec![LabeledExample {
                features: SparseVector::from_pairs(vec![(0, 1.0)]),
                label: 1.0,
            }],
            1,
        );
        let model = train(&ds, &NaiveBayesConfig::default()).unwrap();
        let p = model.predict_proba(&SparseVector::from_pairs(vec![(0, 1.0)]));
        assert!(p > 0.5 && p.is_finite());
    }

    #[test]
    fn out_of_range_features_ignored() {
        let model = train(&toy(), &NaiveBayesConfig::default()).unwrap();
        let p = model.predict_proba(&SparseVector::from_pairs(vec![(500, 1.0)]));
        assert!(p.is_finite());
    }
}
