//! Dictionary-interning feature space.
//!
//! Helix keeps pre-processing output "in human-readable format for ease of
//! development and automatically converts it into a compatible format for
//! ML" (paper §2.1). The conversion point is this type: named features
//! (`"edu=Masters"`, `"ageBucket=3"`, `"eduXocc=Masters×Tech"`) are interned
//! to dense column indices shared between training and test collections.

use crate::dataset::LabeledExample;
use crate::vector::SparseVector;
use crate::{MlError, Result};
use helix_dataflow::fx::FxHashMap;

/// Bidirectional mapping between feature names and column indices.
#[derive(Debug, Clone, Default)]
pub struct FeatureSpace {
    by_name: FxHashMap<String, u32>,
    names: Vec<String>,
    frozen: bool,
}

impl FeatureSpace {
    /// An empty, unfrozen space.
    pub fn new() -> Self {
        FeatureSpace::default()
    }

    /// Number of interned features.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether no features are interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Interns `name`, returning its stable index.
    ///
    /// # Errors
    /// [`MlError::FrozenFeatureSpace`] if the space is frozen and the name
    /// is new (test-time features unseen at training time should be dropped
    /// by the caller via [`FeatureSpace::lookup`], not interned).
    pub fn intern(&mut self, name: &str) -> Result<u32> {
        if let Some(&idx) = self.by_name.get(name) {
            return Ok(idx);
        }
        if self.frozen {
            return Err(MlError::FrozenFeatureSpace(name.to_string()));
        }
        let idx = self.names.len() as u32;
        self.by_name.insert(name.to_string(), idx);
        self.names.push(name.to_string());
        Ok(idx)
    }

    /// Index of an already-interned feature.
    pub fn lookup(&self, name: &str) -> Option<u32> {
        self.by_name.get(name).copied()
    }

    /// Name of the feature at `index`.
    pub fn name(&self, index: u32) -> Option<&str> {
        self.names.get(index as usize).map(String::as_str)
    }

    /// All names in index order.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Prevents further interning (call after the training pass).
    pub fn freeze(&mut self) {
        self.frozen = true;
    }

    /// Whether the space is frozen.
    pub fn is_frozen(&self) -> bool {
        self.frozen
    }

    /// Builds a sparse vector from `(name, value)` pairs, interning names.
    pub fn vectorize(&mut self, pairs: &[(String, f64)]) -> Result<SparseVector> {
        let mut indexed = Vec::with_capacity(pairs.len());
        for (name, value) in pairs {
            indexed.push((self.intern(name)?, *value));
        }
        Ok(SparseVector::from_pairs(indexed))
    }

    /// Builds a sparse vector from `(name, value)` pairs, silently dropping
    /// names missing from a frozen space (standard test-time behaviour).
    pub fn vectorize_frozen(&self, pairs: &[(String, f64)]) -> SparseVector {
        let indexed = pairs
            .iter()
            .filter_map(|(name, value)| self.lookup(name).map(|idx| (idx, *value)))
            .collect();
        SparseVector::from_pairs(indexed)
    }

    /// Builds a labeled example, interning names.
    pub fn example(&mut self, pairs: &[(String, f64)], label: f64) -> Result<LabeledExample> {
        Ok(LabeledExample {
            features: self.vectorize(pairs)?,
            label,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_stable_and_dedupes() {
        let mut fs = FeatureSpace::new();
        let a = fs.intern("edu=Masters").unwrap();
        let b = fs.intern("age=42").unwrap();
        assert_eq!(fs.intern("edu=Masters").unwrap(), a);
        assert_ne!(a, b);
        assert_eq!(fs.len(), 2);
        assert_eq!(fs.name(a), Some("edu=Masters"));
    }

    #[test]
    fn freeze_blocks_new_names_only() {
        let mut fs = FeatureSpace::new();
        fs.intern("known").unwrap();
        fs.freeze();
        assert!(fs.intern("known").is_ok());
        assert!(matches!(
            fs.intern("novel"),
            Err(MlError::FrozenFeatureSpace(_))
        ));
    }

    #[test]
    fn vectorize_frozen_drops_unknowns() {
        let mut fs = FeatureSpace::new();
        fs.intern("a").unwrap();
        fs.freeze();
        let v = fs.vectorize_frozen(&[("a".into(), 1.0), ("b".into(), 9.0)]);
        assert_eq!(v.nnz(), 1);
        assert_eq!(v.get(0), 1.0);
    }

    #[test]
    fn vectorize_merges_duplicate_names() {
        let mut fs = FeatureSpace::new();
        let v = fs
            .vectorize(&[("tok=the".into(), 1.0), ("tok=the".into(), 1.0)])
            .unwrap();
        assert_eq!(v.nnz(), 1);
        assert_eq!(v.get(0), 2.0);
    }

    #[test]
    fn example_carries_label() {
        let mut fs = FeatureSpace::new();
        let ex = fs.example(&[("x".into(), 1.0)], 1.0).unwrap();
        assert_eq!(ex.label, 1.0);
        assert_eq!(ex.features.nnz(), 1);
    }
}
