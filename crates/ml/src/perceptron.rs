//! Averaged perceptron for multi-class classification.
//!
//! Used by the information-extraction application as a structured-
//! prediction-flavoured alternative: candidate mentions are classified with
//! token-context features, the standard reduction DeepDive-style systems
//! use before factor-graph inference.

use crate::dataset::Dataset;
use crate::vector::SparseVector;
use crate::{MlError, Result};
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Hyperparameters for [`train`].
#[derive(Debug, Clone, PartialEq)]
pub struct PerceptronConfig {
    /// Number of classes; labels must be integers in `0..num_classes`.
    pub num_classes: usize,
    /// Passes over the data.
    pub epochs: usize,
    /// Shuffle seed.
    pub seed: u64,
}

impl Default for PerceptronConfig {
    fn default() -> Self {
        PerceptronConfig {
            num_classes: 2,
            epochs: 5,
            seed: 42,
        }
    }
}

/// A trained averaged-perceptron model.
#[derive(Debug, Clone, PartialEq)]
pub struct PerceptronModel {
    /// `weights[class]` is the averaged weight vector for that class.
    pub weights: Vec<Vec<f64>>,
    /// Per-class bias.
    pub bias: Vec<f64>,
}

impl PerceptronModel {
    /// Highest-scoring class.
    pub fn predict(&self, features: &SparseVector) -> usize {
        let mut best = 0;
        let mut best_score = f64::NEG_INFINITY;
        for (class, w) in self.weights.iter().enumerate() {
            let score = features.dot(w) + self.bias[class];
            if score > best_score {
                best_score = score;
                best = class;
            }
        }
        best
    }

    /// Raw per-class scores.
    pub fn scores(&self, features: &SparseVector) -> Vec<f64> {
        self.weights
            .iter()
            .zip(&self.bias)
            .map(|(w, b)| features.dot(w) + b)
            .collect()
    }
}

/// Trains an averaged perceptron. Labels are class indices stored as `f64`.
///
/// # Errors
/// [`MlError::InvalidInput`] for empty data or out-of-range labels.
pub fn train(dataset: &Dataset, config: &PerceptronConfig) -> Result<PerceptronModel> {
    dataset.check_trainable()?;
    if config.num_classes < 2 {
        return Err(MlError::InvalidInput("perceptron needs ≥ 2 classes".into()));
    }
    let dim = dataset.dim() as usize;
    let k = config.num_classes;
    let mut w = vec![vec![0.0f64; dim]; k];
    let mut b = vec![0.0f64; k];
    // Averaging via the "accumulate at update time" trick: keep running
    // sums weighted by the step counter.
    let mut w_sum = vec![vec![0.0f64; dim]; k];
    let mut b_sum = vec![0.0f64; k];
    let mut step = 1.0f64;
    let mut order: Vec<usize> = (0..dataset.len()).collect();
    let mut rng = rand::rngs::StdRng::seed_from_u64(config.seed);

    for _ in 0..config.epochs {
        order.shuffle(&mut rng);
        for &idx in &order {
            let ex = &dataset.examples()[idx];
            let gold = ex.label as usize;
            if ex.label.fract() != 0.0 || gold >= k {
                return Err(MlError::InvalidInput(format!(
                    "label {} out of range for {k} classes",
                    ex.label
                )));
            }
            let mut best = 0;
            let mut best_score = f64::NEG_INFINITY;
            for class in 0..k {
                let score = ex.features.dot(&w[class]) + b[class];
                if score > best_score {
                    best_score = score;
                    best = class;
                }
            }
            if best != gold {
                for (i, v) in ex.features.iter() {
                    w[gold][i as usize] += v;
                    w[best][i as usize] -= v;
                    w_sum[gold][i as usize] += step * v;
                    w_sum[best][i as usize] -= step * v;
                }
                b[gold] += 1.0;
                b[best] -= 1.0;
                b_sum[gold] += step;
                b_sum[best] -= step;
            }
            step += 1.0;
        }
    }

    // Averaged weights: w_avg = w - w_sum / step.
    for class in 0..k {
        for i in 0..dim {
            w[class][i] -= w_sum[class][i] / step;
        }
        b[class] -= b_sum[class] / step;
    }
    Ok(PerceptronModel {
        weights: w,
        bias: b,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::LabeledExample;

    fn three_class() -> Dataset {
        let mut examples = Vec::new();
        for i in 0..300 {
            let class = i % 3;
            let features = SparseVector::from_pairs(vec![(class as u32, 1.0), (3, 0.1)]);
            examples.push(LabeledExample {
                features,
                label: class as f64,
            });
        }
        Dataset::new(examples, 4)
    }

    #[test]
    fn learns_three_classes() {
        let config = PerceptronConfig {
            num_classes: 3,
            ..Default::default()
        };
        let model = train(&three_class(), &config).unwrap();
        for class in 0..3u32 {
            let v = SparseVector::from_pairs(vec![(class, 1.0)]);
            assert_eq!(model.predict(&v), class as usize);
        }
    }

    #[test]
    fn rejects_out_of_range_labels() {
        let ds = Dataset::new(
            vec![LabeledExample {
                features: SparseVector::empty(),
                label: 5.0,
            }],
            1,
        );
        assert!(train(&ds, &PerceptronConfig::default()).is_err());
    }

    #[test]
    fn rejects_single_class_config() {
        let config = PerceptronConfig {
            num_classes: 1,
            ..Default::default()
        };
        assert!(train(&three_class(), &config).is_err());
    }

    #[test]
    fn deterministic_given_seed() {
        let config = PerceptronConfig {
            num_classes: 3,
            ..Default::default()
        };
        assert_eq!(
            train(&three_class(), &config).unwrap(),
            train(&three_class(), &config).unwrap()
        );
    }

    #[test]
    fn scores_have_one_entry_per_class() {
        let config = PerceptronConfig {
            num_classes: 3,
            ..Default::default()
        };
        let model = train(&three_class(), &config).unwrap();
        assert_eq!(model.scores(&SparseVector::empty()).len(), 3);
    }
}
