//! Unified model type with a compact binary codec.
//!
//! Helix materializes *trained models* exactly like data intermediates
//! (the `incPred`/`predictions` nodes of Fig. 1b), so every learner's
//! output must serialize deterministically. The encoding is tag + fixed-
//! width little-endian payloads.

use crate::linreg::{LinRegConfig, LinRegModel};
use crate::logreg::{LogRegConfig, LogRegModel};
use crate::naive_bayes::NaiveBayesModel;
use crate::perceptron::PerceptronModel;
use crate::vector::SparseVector;
use crate::{MlError, Result};

const TAG_LOGREG: u8 = 1;
const TAG_LINREG: u8 = 2;
const TAG_NAIVE_BAYES: u8 = 3;
const TAG_PERCEPTRON: u8 = 4;

/// Any trained model known to the substrate.
#[derive(Debug, Clone, PartialEq)]
pub enum Model {
    /// Binary logistic regression.
    LogReg(LogRegModel),
    /// Ridge linear regression.
    LinReg(LinRegModel),
    /// Bernoulli naive Bayes.
    NaiveBayes(NaiveBayesModel),
    /// Averaged multi-class perceptron.
    Perceptron(PerceptronModel),
}

impl Model {
    /// A short human-readable kind name (for DAG visualization).
    pub fn kind(&self) -> &'static str {
        match self {
            Model::LogReg(_) => "logreg",
            Model::LinReg(_) => "linreg",
            Model::NaiveBayes(_) => "naive_bayes",
            Model::Perceptron(_) => "perceptron",
        }
    }

    /// Unified prediction: probability for binary models, raw value for
    /// regression, class index (as f64) for the perceptron.
    pub fn predict(&self, features: &SparseVector) -> f64 {
        match self {
            Model::LogReg(m) => m.predict_proba(features),
            Model::LinReg(m) => m.predict(features),
            Model::NaiveBayes(m) => m.predict_proba(features),
            Model::Perceptron(m) => m.predict(features) as f64,
        }
    }

    /// Hard decision: thresholds probabilities at 0.5; passes regression
    /// and class outputs through.
    pub fn decide(&self, features: &SparseVector) -> f64 {
        match self {
            Model::LogReg(m) => m.predict(features),
            Model::LinReg(m) => m.predict(features),
            Model::NaiveBayes(m) => m.predict(features),
            Model::Perceptron(m) => m.predict(features) as f64,
        }
    }

    /// Serializes the model.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        match self {
            Model::LogReg(m) => {
                buf.push(TAG_LOGREG);
                write_f64_vec(&mut buf, &m.weights);
                write_f64(&mut buf, m.bias);
                write_u64(&mut buf, m.config.epochs as u64);
                write_f64(&mut buf, m.config.learning_rate);
                write_f64(&mut buf, m.config.reg_param);
                write_u64(&mut buf, m.config.seed);
            }
            Model::LinReg(m) => {
                buf.push(TAG_LINREG);
                write_f64_vec(&mut buf, &m.weights);
                write_f64(&mut buf, m.bias);
                write_u64(&mut buf, m.config.epochs as u64);
                write_f64(&mut buf, m.config.learning_rate);
                write_f64(&mut buf, m.config.reg_param);
                write_u64(&mut buf, m.config.seed);
            }
            Model::NaiveBayes(m) => {
                buf.push(TAG_NAIVE_BAYES);
                for class in 0..2 {
                    write_f64_vec(&mut buf, &m.log_prob_present[class]);
                    write_f64_vec(&mut buf, &m.log_prob_absent[class]);
                }
                write_f64(&mut buf, m.log_prior[0]);
                write_f64(&mut buf, m.log_prior[1]);
            }
            Model::Perceptron(m) => {
                buf.push(TAG_PERCEPTRON);
                write_u64(&mut buf, m.weights.len() as u64);
                for w in &m.weights {
                    write_f64_vec(&mut buf, w);
                }
                write_f64_vec(&mut buf, &m.bias);
            }
        }
        buf
    }

    /// Deserializes a model encoded with [`Model::encode`].
    ///
    /// # Errors
    /// [`MlError::Codec`] on malformed input.
    pub fn decode(bytes: &[u8]) -> Result<Model> {
        let mut r = Reader { bytes, pos: 0 };
        let tag = r.u8()?;
        let model = match tag {
            TAG_LOGREG => {
                let weights = r.f64_vec()?;
                let bias = r.f64()?;
                let config = LogRegConfig {
                    epochs: r.u64()? as usize,
                    learning_rate: r.f64()?,
                    reg_param: r.f64()?,
                    seed: r.u64()?,
                };
                Model::LogReg(LogRegModel {
                    weights,
                    bias,
                    config,
                })
            }
            TAG_LINREG => {
                let weights = r.f64_vec()?;
                let bias = r.f64()?;
                let config = LinRegConfig {
                    epochs: r.u64()? as usize,
                    learning_rate: r.f64()?,
                    reg_param: r.f64()?,
                    seed: r.u64()?,
                };
                Model::LinReg(LinRegModel {
                    weights,
                    bias,
                    config,
                })
            }
            TAG_NAIVE_BAYES => {
                let p0 = r.f64_vec()?;
                let a0 = r.f64_vec()?;
                let p1 = r.f64_vec()?;
                let a1 = r.f64_vec()?;
                let prior = [r.f64()?, r.f64()?];
                Model::NaiveBayes(NaiveBayesModel {
                    log_prob_present: [p0, p1],
                    log_prob_absent: [a0, a1],
                    log_prior: prior,
                })
            }
            TAG_PERCEPTRON => {
                let k = r.u64()? as usize;
                if k > 1 << 20 {
                    return Err(MlError::Codec(format!("implausible class count {k}")));
                }
                let mut weights = Vec::with_capacity(k);
                for _ in 0..k {
                    weights.push(r.f64_vec()?);
                }
                let bias = r.f64_vec()?;
                Model::Perceptron(PerceptronModel { weights, bias })
            }
            other => return Err(MlError::Codec(format!("bad model tag {other}"))),
        };
        if r.pos != bytes.len() {
            return Err(MlError::Codec("trailing bytes after model".into()));
        }
        Ok(model)
    }
}

fn write_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn write_f64(buf: &mut Vec<u8>, v: f64) {
    buf.extend_from_slice(&v.to_bits().to_le_bytes());
}

fn write_f64_vec(buf: &mut Vec<u8>, v: &[f64]) {
    write_u64(buf, v.len() as u64);
    for &x in v {
        write_f64(buf, x);
    }
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Reader<'_> {
    fn take(&mut self, n: usize) -> Result<&[u8]> {
        if self.pos + n > self.bytes.len() {
            return Err(MlError::Codec("truncated model".into()));
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    fn f64(&mut self) -> Result<f64> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn f64_vec(&mut self) -> Result<Vec<f64>> {
        let n = self.u64()? as usize;
        if n > 1 << 28 {
            return Err(MlError::Codec(format!("implausible vector length {n}")));
        }
        let mut v = Vec::with_capacity(n.min(1 << 16));
        for _ in 0..n {
            v.push(self.f64()?);
        }
        Ok(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{Dataset, LabeledExample};
    use crate::naive_bayes::NaiveBayesConfig;
    use crate::perceptron::PerceptronConfig;

    fn toy() -> Dataset {
        let examples = (0..40)
            .map(|i| LabeledExample {
                features: SparseVector::from_pairs(vec![((i % 2) as u32, 1.0)]),
                label: (i % 2) as f64,
            })
            .collect();
        Dataset::new(examples, 2)
    }

    #[test]
    fn all_model_kinds_round_trip() {
        let models = vec![
            Model::LogReg(crate::logreg::train(&toy(), &LogRegConfig::default()).unwrap()),
            Model::LinReg(crate::linreg::train(&toy(), &LinRegConfig::default()).unwrap()),
            Model::NaiveBayes(
                crate::naive_bayes::train(&toy(), &NaiveBayesConfig::default()).unwrap(),
            ),
            Model::Perceptron(
                crate::perceptron::train(&toy(), &PerceptronConfig::default()).unwrap(),
            ),
        ];
        for model in models {
            let bytes = model.encode();
            let back = Model::decode(&bytes).unwrap();
            assert_eq!(back, model, "round trip failed for {}", model.kind());
        }
    }

    #[test]
    fn decoded_model_predicts_identically() {
        let model = Model::LogReg(crate::logreg::train(&toy(), &LogRegConfig::default()).unwrap());
        let back = Model::decode(&model.encode()).unwrap();
        let v = SparseVector::from_pairs(vec![(1, 1.0)]);
        assert_eq!(model.predict(&v), back.predict(&v));
        assert_eq!(model.decide(&v), back.decide(&v));
    }

    #[test]
    fn rejects_garbage() {
        assert!(Model::decode(&[]).is_err());
        assert!(Model::decode(&[99, 0, 0]).is_err());
        let mut bytes =
            Model::LogReg(crate::logreg::train(&toy(), &LogRegConfig::default()).unwrap()).encode();
        bytes.push(0);
        assert!(Model::decode(&bytes).is_err());
        bytes.pop();
        bytes.pop();
        assert!(Model::decode(&bytes).is_err());
    }

    #[test]
    fn kind_names_are_stable() {
        let m = Model::NaiveBayes(
            crate::naive_bayes::train(&toy(), &NaiveBayesConfig::default()).unwrap(),
        );
        assert_eq!(m.kind(), "naive_bayes");
    }
}
