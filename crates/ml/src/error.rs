//! Error type for the ML substrate.

use std::fmt;

/// Errors raised by learners, feature spaces, and codecs.
#[derive(Debug)]
pub enum MlError {
    /// Training or prediction input was structurally invalid.
    InvalidInput(String),
    /// A frozen feature space was asked to intern a new feature.
    FrozenFeatureSpace(String),
    /// Malformed bytes while decoding a model.
    Codec(String),
}

impl fmt::Display for MlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MlError::InvalidInput(msg) => write!(f, "invalid input: {msg}"),
            MlError::FrozenFeatureSpace(name) => {
                write!(f, "feature space is frozen; cannot intern `{name}`")
            }
            MlError::Codec(msg) => write!(f, "model codec error: {msg}"),
        }
    }
}

impl std::error::Error for MlError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(MlError::InvalidInput("empty dataset".into())
            .to_string()
            .contains("empty dataset"));
        assert!(MlError::FrozenFeatureSpace("age".into())
            .to_string()
            .contains("age"));
    }
}
