//! Offline shim for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives with `parking_lot`'s non-poisoning API:
//! `lock()` returns the guard directly (a poisoned std lock is recovered,
//! matching `parking_lot`'s "panics do not poison" semantics).

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion primitive with `parking_lot`'s panic-free `lock()`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(guard) => Some(guard),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the underlying data.
    pub fn get_mut(&mut self) -> &mut T {
        self.0
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// A reader-writer lock with `parking_lot`'s panic-free API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Returns a mutable reference to the underlying data.
    pub fn get_mut(&mut self) -> &mut T {
        self.0
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(vec![1, 2]);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }
}
