//! Option strategies, mirroring `proptest::option`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Strategy producing `Option<T>` from an inner strategy.
#[derive(Debug, Clone)]
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        // Match real proptest's default: Some three times out of four.
        if rng.below(4) == 0 {
            None
        } else {
            Some(self.inner.generate(rng))
        }
    }
}

/// Generates `None` or `Some(value)` with `value` from `inner`; mirrors
/// `proptest::option::of`.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_both_variants() {
        let mut rng = TestRng::from_seed(21);
        let strategy = of(0u64..100);
        let values: Vec<_> = (0..200).map(|_| strategy.generate(&mut rng)).collect();
        assert!(values.iter().any(Option::is_none));
        assert!(values.iter().any(Option::is_some));
        assert!(values.iter().flatten().all(|&v| v < 100));
    }
}
