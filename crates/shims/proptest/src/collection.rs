//! Collection strategies, mirroring `proptest::collection`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// Inclusive length bounds for generated collections.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> Self {
        SizeRange {
            min: exact,
            max: exact,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(range: Range<usize>) -> Self {
        assert!(range.start < range.end, "empty size range");
        SizeRange {
            min: range.start,
            max: range.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(range: RangeInclusive<usize>) -> Self {
        assert!(range.start() <= range.end(), "empty size range");
        SizeRange {
            min: *range.start(),
            max: *range.end(),
        }
    }
}

/// Strategy producing `Vec`s whose elements come from `element`.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = self.size.max - self.size.min + 1;
        let len = self.size.min + rng.below(span as u64) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Generates vectors of `size` elements drawn from `element`; mirrors
/// `proptest::collection::vec`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_and_ranged_sizes() {
        let mut rng = TestRng::from_seed(11);
        for _ in 0..100 {
            assert_eq!(vec(0u8..10, 4).generate(&mut rng).len(), 4);
            let ranged = vec(0u8..10, 0..20).generate(&mut rng);
            assert!(ranged.len() < 20);
        }
    }

    #[test]
    fn nests() {
        let mut rng = TestRng::from_seed(12);
        let nested = vec(vec(0i64..5, 2), 1..4).generate(&mut rng);
        assert!(!nested.is_empty() && nested.len() < 4);
        assert!(nested.iter().all(|inner| inner.len() == 2));
    }
}
