//! The [`Strategy`] trait, combinators, and primitive strategies.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// A recipe for generating random values of one type.
///
/// Generation-only: real proptest's value trees and shrinking are not
/// implemented. `generate` must be deterministic given the RNG stream.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` builds
    /// out of it (dependent generation).
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Rejects generated values failing `predicate`, retrying with fresh
    /// draws. Panics (failing the test) if 10 000 consecutive draws are
    /// rejected — mirroring proptest's "too many global rejects" error.
    fn prop_filter<F>(self, whence: impl Into<String>, predicate: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence: whence.into(),
            predicate,
        }
    }

    /// Type-erases this strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// A type-erased strategy; cheap to clone.
pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    whence: String,
    predicate: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..10_000 {
            let value = self.inner.generate(rng);
            if (self.predicate)(&value) {
                return value;
            }
        }
        panic!(
            "prop_filter rejected 10000 consecutive values: {}",
            self.whence
        );
    }
}

/// Weighted union of same-typed strategies; built by [`crate::prop_oneof!`].
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total_weight: u64,
}

impl<T> Union<T> {
    /// Builds a union from `(weight, strategy)` arms.
    ///
    /// # Panics
    /// If `arms` is empty or all weights are zero.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total_weight: u64 = arms.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(
            total_weight > 0,
            "prop_oneof! needs at least one positive-weight arm"
        );
        Union { arms, total_weight }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total_weight);
        for (weight, strategy) in &self.arms {
            let weight = u64::from(*weight);
            if pick < weight {
                return strategy.generate(rng);
            }
            pick -= weight;
        }
        unreachable!("weighted pick exceeded total weight")
    }
}

macro_rules! impl_int_range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = u128::from(rng.next_u64()) % span;
                (self.start as i128 + draw as i128) as $ty
            }
        }

        impl Strategy for RangeInclusive<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut TestRng) -> $ty {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as i128 - start as i128) as u128 + 1;
                let draw = u128::from(rng.next_u64()) % span;
                (start as i128 + draw as i128) as $ty
            }
        }
    )*};
}

impl_int_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;

    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (rng.unit_f64() as f32) * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::from_seed(99)
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = rng();
        for _ in 0..1_000 {
            let v = (-40i64..40).generate(&mut rng);
            assert!((-40..40).contains(&v));
            let u = (2usize..9).generate(&mut rng);
            assert!((2..9).contains(&u));
            let f = (-1e12f64..1e12).generate(&mut rng);
            assert!(f.is_finite());
        }
    }

    #[test]
    fn map_filter_flat_map_compose() {
        let mut rng = rng();
        let strategy = (1u64..50)
            .prop_filter("even only", |v| v % 2 == 0)
            .prop_map(|v| v * 10)
            .prop_flat_map(|hi| 0u64..hi);
        for _ in 0..200 {
            let v = strategy.generate(&mut rng);
            assert!(v < 500);
        }
    }

    #[test]
    fn union_honors_zero_weight_arms() {
        let mut rng = rng();
        let union = Union::new(vec![(0u32, Just(1u8).boxed()), (3u32, Just(2u8).boxed())]);
        for _ in 0..100 {
            assert_eq!(union.generate(&mut rng), 2);
        }
    }

    #[test]
    fn boxed_strategies_clone_and_generate() {
        let mut rng = rng();
        let boxed = (0i64..5).prop_map(|v| v * 2).boxed();
        let clone = boxed.clone();
        for _ in 0..50 {
            assert!(boxed.generate(&mut rng) <= 8);
            assert!(clone.generate(&mut rng) % 2 == 0);
        }
    }

    #[test]
    fn tuples_generate_componentwise() {
        let mut rng = rng();
        let (a, b, c) = (0usize..3, 10i64..20, Just("x")).generate(&mut rng);
        assert!(a < 3);
        assert!((10..20).contains(&b));
        assert_eq!(c, "x");
    }
}
