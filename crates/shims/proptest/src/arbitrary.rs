//! `any::<T>()` and the [`Arbitrary`] trait.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::marker::PhantomData;

/// Types with a canonical full-range strategy.
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($ty:ty),*) => {$(
        impl Arbitrary for $ty {
            fn arbitrary(rng: &mut TestRng) -> $ty {
                rng.next_u64() as $ty
            }
        }
    )*};
}

impl_arbitrary_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl Arbitrary for i128 {
    fn arbitrary(rng: &mut TestRng) -> i128 {
        ((u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())) as i128
    }
}

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> u128 {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        // Weight toward ASCII (as real proptest does) but cover all planes.
        if rng.below(4) > 0 {
            (0x20u8 + rng.below(0x5f) as u8) as char
        } else {
            char::from_u32(rng.below(0x11_0000) as u32).unwrap_or('\u{fffd}')
        }
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite, sign-symmetric, wide dynamic range; no NaN/inf (callers
        // in this workspace compare with PartialEq).
        let magnitude = rng.unit_f64() * 1e18;
        if rng.next_u64() & 1 == 0 {
            magnitude
        } else {
            -magnitude
        }
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        f64::arbitrary(rng) as f32
    }
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy generating arbitrary values of `T`; mirrors `proptest::prelude::any`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn any_covers_small_domains() {
        let mut rng = TestRng::from_seed(5);
        let mut seen_true = false;
        let mut seen_false = false;
        for _ in 0..100 {
            match any::<bool>().generate(&mut rng) {
                true => seen_true = true,
                false => seen_false = true,
            }
        }
        assert!(seen_true && seen_false);
    }

    #[test]
    fn any_f64_is_finite() {
        let mut rng = TestRng::from_seed(6);
        for _ in 0..1_000 {
            assert!(any::<f64>().generate(&mut rng).is_finite());
        }
    }
}
