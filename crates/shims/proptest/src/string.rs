//! String strategies from regex-like patterns.
//!
//! Real proptest treats `&str` as a full regex strategy. The shim supports
//! the subset the workspace uses — literal characters, `[a-z]`-style
//! character classes (with ranges and negation-free members), and the
//! quantifiers `{n}`, `{m,n}`, `?`, `*`, and `+` (the unbounded ones capped
//! at 8 repetitions). Unsupported syntax panics at generation time so a
//! silent wrong interpretation can't slip into a property.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

#[derive(Debug, Clone)]
enum Piece {
    /// One literal character.
    Literal(char),
    /// One character drawn from a set.
    Class(Vec<(char, char)>),
}

#[derive(Debug, Clone)]
struct Part {
    piece: Piece,
    min: usize,
    max: usize,
}

fn parse_pattern(pattern: &str) -> Vec<Part> {
    let mut chars = pattern.chars().peekable();
    let mut parts = Vec::new();
    while let Some(c) = chars.next() {
        let piece = match c {
            '[' => {
                let mut ranges = Vec::new();
                loop {
                    let member = chars
                        .next()
                        .unwrap_or_else(|| panic!("unterminated character class in {pattern:?}"));
                    if member == ']' {
                        break;
                    }
                    if chars.peek() == Some(&'-') {
                        chars.next();
                        let hi = chars
                            .next()
                            .filter(|&h| h != ']')
                            .unwrap_or_else(|| panic!("bad range in class in {pattern:?}"));
                        ranges.push((member, hi));
                    } else {
                        ranges.push((member, member));
                    }
                }
                assert!(!ranges.is_empty(), "empty character class in {pattern:?}");
                Piece::Class(ranges)
            }
            '\\' => Piece::Literal(
                chars
                    .next()
                    .unwrap_or_else(|| panic!("dangling escape in {pattern:?}")),
            ),
            '(' | ')' | '|' | '.' | '^' | '$' => {
                panic!("unsupported regex syntax {c:?} in shim string strategy {pattern:?}")
            }
            other => Piece::Literal(other),
        };
        let (min, max) = match chars.peek() {
            Some('{') => {
                chars.next();
                let body: String = chars.by_ref().take_while(|&b| b != '}').collect();
                match body.split_once(',') {
                    Some((lo, hi)) => (
                        lo.trim().parse().expect("bad {m,n} quantifier"),
                        hi.trim().parse().expect("bad {m,n} quantifier"),
                    ),
                    None => {
                        let n = body.trim().parse().expect("bad {n} quantifier");
                        (n, n)
                    }
                }
            }
            Some('?') => {
                chars.next();
                (0, 1)
            }
            Some('*') => {
                chars.next();
                (0, 8)
            }
            Some('+') => {
                chars.next();
                (1, 8)
            }
            _ => (1, 1),
        };
        assert!(min <= max, "empty quantifier range in {pattern:?}");
        parts.push(Part { piece, min, max });
    }
    parts
}

fn generate_from(parts: &[Part], rng: &mut TestRng) -> String {
    let mut out = String::new();
    for part in parts {
        let count = part.min + rng.below((part.max - part.min + 1) as u64) as usize;
        for _ in 0..count {
            match &part.piece {
                Piece::Literal(c) => out.push(*c),
                Piece::Class(ranges) => {
                    let (lo, hi) = ranges[rng.below(ranges.len() as u64) as usize];
                    let span = hi as u32 - lo as u32 + 1;
                    let picked = lo as u32 + rng.below(u64::from(span)) as u32;
                    out.push(char::from_u32(picked).unwrap_or(lo));
                }
            }
        }
    }
    out
}

impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        generate_from(&parse_pattern(self), rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_with_bounded_repeat() {
        let mut rng = TestRng::from_seed(31);
        let mut max_len = 0;
        for _ in 0..500 {
            let s = "[a-z]{0,12}".generate(&mut rng);
            assert!(s.len() <= 12);
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
            max_len = max_len.max(s.len());
        }
        assert!(
            max_len >= 10,
            "repetition range under-covered: max {max_len}"
        );
    }

    #[test]
    fn literals_and_exact_counts() {
        let mut rng = TestRng::from_seed(32);
        let s = "ab[0-9]{3}".generate(&mut rng);
        assert_eq!(s.len(), 5);
        assert!(s.starts_with("ab"));
        assert!(s[2..].chars().all(|c| c.is_ascii_digit()));
    }

    #[test]
    fn multi_member_class() {
        let mut rng = TestRng::from_seed(33);
        for _ in 0..100 {
            let s = "[abx-z]".generate(&mut rng);
            assert!(["a", "b", "x", "y", "z"].contains(&s.as_str()));
        }
    }
}
