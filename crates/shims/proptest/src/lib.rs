//! Offline shim for the `proptest` crate (1.x API surface).
//!
//! Provides generation-only property testing: the [`proptest!`] macro runs
//! each property over `ProptestConfig::cases` random inputs drawn from
//! [`strategy::Strategy`] values. Unlike real proptest there is **no shrinking** —
//! a failing case panics with whatever message the assertion produced —
//! and no failure persistence. Randomness is deterministic per test
//! (seeded from the test's module path and name), so failures reproduce.
//!
//! Implemented surface: integer/float range strategies, tuple strategies,
//! [`collection::vec`], [`option::of`], [`strategy::Just`], [`arbitrary`]
//! via [`arbitrary::any`], regex-subset string strategies (`"[a-z]{0,12}"`-style),
//! `prop_map` / `prop_flat_map` / `prop_filter` / `boxed`, [`prop_oneof!`],
//! and the `prop_assert*` macros.

pub mod arbitrary;
pub mod collection;
pub mod option;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// Everything a property test typically imports, mirroring
/// `proptest::prelude::*`.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Asserts a condition inside a property; mirrors `proptest::prop_assert!`.
#[macro_export]
macro_rules! prop_assert {
    ($($tokens:tt)*) => { assert!($($tokens)*) };
}

/// Asserts equality inside a property; mirrors `proptest::prop_assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tokens:tt)*) => { assert_eq!($($tokens)*) };
}

/// Asserts inequality inside a property; mirrors `proptest::prop_assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tokens:tt)*) => { assert_ne!($($tokens)*) };
}

/// Skips the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return;
        }
    };
}

/// Weighted or unweighted union of strategies producing the same type;
/// mirrors `proptest::prop_oneof!`. Every arm is boxed.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( (($weight) as u32, $crate::strategy::Strategy::boxed($strategy)) ),+
        ])
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( (1u32, $crate::strategy::Strategy::boxed($strategy)) ),+
        ])
    };
}

/// Declares property-based tests; mirrors `proptest::proptest!`.
///
/// Each `fn name(pat in strategy, ...) { body }` item becomes a `#[test]`
/// that draws `config.cases` input tuples and runs the body on each. An
/// optional leading `#![proptest_config(expr)]` overrides the config.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`]; expands one test fn at a time.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr)) => {};
    (
        ($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $config;
            let mut rng = $crate::test_runner::TestRng::from_name(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for __case in 0..config.cases {
                let ( $( $pat, )+ ) = (
                    $( $crate::strategy::Strategy::generate(&($strategy), &mut rng), )+
                );
                // A closure per case so `prop_assume!`'s `return` skips
                // only the current case.
                #[allow(clippy::redundant_closure_call)]
                (move || $body)();
            }
        }
        $crate::__proptest_items! { ($config) $($rest)* }
    };
}
