//! Test configuration and the deterministic RNG driving generation.

/// Configuration for a `proptest!` block, mirroring
/// `proptest::test_runner::Config` (re-exported as `ProptestConfig`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
    /// Accepted for compatibility; the shim never shrinks.
    pub max_shrink_iters: u32,
    /// Accepted for compatibility; `prop_filter` retries per value instead
    /// of tracking a global reject budget.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; the shim halves that to keep the
        // workspace's end-to-end property tests fast in CI.
        ProptestConfig {
            cases: 128,
            max_shrink_iters: 0,
            max_global_rejects: 65_536,
        }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases and defaulting everything else.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..ProptestConfig::default()
        }
    }
}

/// Deterministic generator used by all strategies (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator from a test name (FNV-1a over the bytes), so
    /// each property gets a distinct but reproducible stream.
    pub fn from_name(name: &str) -> Self {
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for byte in name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: hash }
    }

    /// Seeds the generator from a raw value.
    pub fn from_seed(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, bound)`. Panics if `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "TestRng::below(0)");
        self.next_u64() % bound
    }

    /// Uniform draw from `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic_and_name_dependent() {
        let mut a = TestRng::from_name("mod::test_a");
        let mut b = TestRng::from_name("mod::test_a");
        let mut c = TestRng::from_name("mod::test_b");
        let (x, y, z) = (a.next_u64(), b.next_u64(), c.next_u64());
        assert_eq!(x, y);
        assert_ne!(x, z);
    }

    #[test]
    fn with_cases_overrides_only_cases() {
        let config = ProptestConfig::with_cases(7);
        assert_eq!(config.cases, 7);
        assert_eq!(
            config.max_global_rejects,
            ProptestConfig::default().max_global_rejects
        );
    }
}
