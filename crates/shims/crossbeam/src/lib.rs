//! Offline shim for the `crossbeam` crate's scoped threads, implemented on
//! `std::thread::scope` (stable since Rust 1.63).
//!
//! Mirrors `crossbeam::scope`'s signatures: the spawn closure receives a
//! `&Scope` argument (for nested spawns) and both `scope` and `join` return
//! `Result`s wrapping thread panics.

use std::any::Any;
use std::thread;

/// Payload carried out of a panicked thread.
pub type PanicPayload = Box<dyn Any + Send + 'static>;

/// A scope handle for spawning threads that may borrow from the caller.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Clone for Scope<'scope, 'env> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<'scope, 'env> Copy for Scope<'scope, 'env> {}

/// Handle to a scoped thread; joins return the closure's result.
pub struct ScopedJoinHandle<'scope, T> {
    inner: thread::ScopedJoinHandle<'scope, T>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a scoped thread. As in crossbeam, the closure receives the
    /// scope itself so workers can spawn further workers.
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let scope = *self;
        ScopedJoinHandle {
            inner: self.inner.spawn(move || f(&scope)),
        }
    }
}

impl<'scope, T> ScopedJoinHandle<'scope, T> {
    /// Waits for the thread to finish; `Err` carries the panic payload.
    pub fn join(self) -> Result<T, PanicPayload> {
        self.inner.join()
    }
}

/// Creates a scope in which threads may borrow non-`'static` data.
///
/// Unlike crossbeam (which catches child panics and reports them through the
/// returned `Result`), `std::thread::scope` resumes unwinding child panics
/// after joining, so the `Err` arm here is unreachable in practice; the
/// `Result` exists for call-site compatibility.
pub fn scope<'env, F, R>(f: F) -> Result<R, PanicPayload>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(thread::scope(|s| f(&Scope { inner: s })))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scoped_threads_borrow_locals() {
        let data = [1u64, 2, 3, 4];
        let total: u64 = scope(|s| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|chunk| s.spawn(move |_| chunk.iter().sum::<u64>()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .unwrap();
        assert_eq!(total, 10);
    }

    #[test]
    fn nested_spawn_via_scope_arg() {
        let result = scope(|s| {
            s.spawn(|inner| inner.spawn(|_| 21).join().unwrap() * 2)
                .join()
                .unwrap()
        })
        .unwrap();
        assert_eq!(result, 42);
    }
}
