//! Offline shim for the `rand` crate (0.8 API surface).
//!
//! Implements exactly what the Helix workspace uses: a seedable
//! deterministic generator (`rngs::StdRng`), `Rng::gen_range` over integer
//! ranges, `Rng::gen_bool`, and `seq::SliceRandom::shuffle`.
//!
//! The generator is SplitMix64 — not the ChaCha12 of the real `rand`, so
//! seeded streams differ from upstream, but every consumer in this
//! workspace relies only on *determinism for a fixed seed*.

use std::ops::{Range, RangeInclusive};

/// A random number generator producing raw 64-bit output.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A generator that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types into which a range can be sampled uniformly by an [`Rng`].
pub trait SampleRange<T> {
    /// Draws one uniform sample from `self`. Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for Range<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = (rng.next_u64() as u128) % span;
                (self.start as i128 + draw as i128) as $ty
            }
        }
        impl SampleRange<$ty> for RangeInclusive<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let draw = (rng.next_u64() as u128) % span;
                (start as i128 + draw as i128) as $ty
            }
        }
    )*};
}

impl_sample_range_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

/// Convenience sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples uniformly from `range` (half-open or inclusive).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`. Panics unless `0 ≤ p ≤ 1`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range: {p}"
        );
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generators shipped with the shim.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The shim's standard deterministic generator (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Vigna): passes BigCrush, one add + two xor-shifts.
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

/// Sequence-related helpers, mirroring `rand::seq`.
pub mod seq {
    use super::{Rng, RngCore};

    /// Extension methods on slices, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Returns one uniformly chosen element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let v = rng.gen_range(17i64..=90);
            assert!((17..=90).contains(&v));
            let u = rng.gen_range(0usize..13);
            assert!(u < 13);
            let f = rng.gen_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!(0..1000).any(|_| rng.gen_bool(0.0)));
        assert!((0..1000).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(
            v, sorted,
            "shuffle left 100 elements in order (astronomically unlikely)"
        );
    }
}
