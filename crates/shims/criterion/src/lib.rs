//! Offline shim for the `criterion` crate (0.5 API surface).
//!
//! Implements the subset the Helix bench targets use — `Criterion`,
//! benchmark groups, `iter`/`iter_batched`, `BenchmarkId`, `Throughput`,
//! and the `criterion_group!`/`criterion_main!` macros — with plain
//! `Instant` timing instead of criterion's statistical machinery. Each
//! benchmark reports min/median/mean over `sample_size` samples.
//!
//! CLI compatibility: `--bench` (passed by `cargo bench`) is accepted and
//! ignored; `--test` runs every benchmark exactly once without timing
//! (what `cargo test --benches` expects); the first free argument is a
//! substring filter on benchmark ids.
//!
//! # Machine-readable results
//!
//! When the `HELIX_BENCH_JSON` environment variable names a file path,
//! every timed benchmark's summary is also collected and written there as
//! JSON when the bench binary exits (`criterion_main!` flushes it). The
//! CI benchmark-regression gate consumes this file via the `bench_guard`
//! binary; keep the schema in sync with its parser:
//!
//! ```json
//! {"benchmarks": [
//!   {"id": "group/name", "min_ns": 1, "median_ns": 2, "mean_ns": 3, "samples": 10}
//! ]}
//! ```

use std::fmt::{self, Display};
use std::hint::black_box as std_black_box;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// One timed benchmark's summary, queued for the JSON flush.
struct JsonRecord {
    id: String,
    min_ns: u128,
    median_ns: u128,
    mean_ns: u128,
    samples: usize,
}

/// Results collected across every group of the running bench binary.
static JSON_RESULTS: Mutex<Vec<JsonRecord>> = Mutex::new(Vec::new());

fn record_json(record: JsonRecord) {
    if std::env::var_os("HELIX_BENCH_JSON").is_some() {
        JSON_RESULTS
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .push(record);
    }
}

/// Writes all collected results to the `HELIX_BENCH_JSON` path (no-op
/// when the variable is unset). Called by `criterion_main!` after every
/// group has run; exposed for harnesses that define their own `main`.
pub fn flush_json_results() {
    let Some(path) = std::env::var_os("HELIX_BENCH_JSON") else {
        return;
    };
    let records = JSON_RESULTS
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let mut out = String::from("{\"benchmarks\": [\n");
    for (k, r) in records.iter().enumerate() {
        let id = r.id.replace('\\', "\\\\").replace('"', "\\\"");
        out.push_str(&format!(
            "  {{\"id\": \"{id}\", \"min_ns\": {}, \"median_ns\": {}, \"mean_ns\": {}, \"samples\": {}}}{}\n",
            r.min_ns,
            r.median_ns,
            r.mean_ns,
            r.samples,
            if k + 1 < records.len() { "," } else { "" },
        ));
    }
    out.push_str("]}\n");
    let path = std::path::PathBuf::from(path);
    if let Some(parent) = path.parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    if let Err(err) = std::fs::write(&path, out) {
        eprintln!("criterion shim: failed to write {}: {err}", path.display());
        std::process::exit(1);
    }
    println!(
        "wrote {} benchmark results to {}",
        records.len(),
        path.display()
    );
}

/// Records a directly measured metric under `id` — a latency percentile,
/// a counter — into the `HELIX_BENCH_JSON` results alongside the timed
/// benchmarks (min/median/mean all carry `value_ns`, `samples` is 1).
/// Load harnesses that compute their own statistics over many requests
/// use this to expose them to the `bench_guard` gate. Not part of the
/// real criterion API.
pub fn record_metric(id: impl Into<String>, value_ns: u128) {
    let id = id.into();
    println!(
        "{id:<48} metric: {}",
        format_duration(Duration::from_nanos(value_ns as u64))
    );
    record_json(JsonRecord {
        id,
        min_ns: value_ns,
        median_ns: value_ns,
        mean_ns: value_ns,
        samples: 1,
    });
}

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// How a batched benchmark sizes its per-iteration batches. The shim runs
/// one setup per timed routine call regardless, so the variants only exist
/// for call-site compatibility.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small inputs: many iterations per batch in real criterion.
    SmallInput,
    /// Large inputs: one iteration per batch in real criterion.
    LargeInput,
    /// Inputs too large to batch at all.
    PerIteration,
}

/// Throughput annotation attached to a group; printed alongside timings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// The benchmark processes this many elements per iteration.
    Elements(u64),
    /// The benchmark processes this many bytes per iteration.
    Bytes(u64),
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter, rendered `name/param`.
    pub fn new<P: Display>(function_name: impl Into<String>, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{}/{parameter}", function_name.into()),
        }
    }

    /// An id carrying only a parameter value.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Timing collector handed to benchmark closures.
pub struct Bencher {
    sample_size: usize,
    test_mode: bool,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `routine`, running it once per sample.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.test_mode {
            std_black_box(routine());
            return;
        }
        // One untimed warm-up call absorbs cold caches and lazy init.
        std_black_box(routine());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            std_black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    /// Times `routine` on fresh inputs produced by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        if self.test_mode {
            std_black_box(routine(setup()));
            return;
        }
        std_black_box(routine(setup()));
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            std_black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }

    /// `iter_batched` variant taking the input by reference.
    pub fn iter_batched_ref<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(&mut I) -> O,
    {
        if self.test_mode {
            std_black_box(routine(&mut setup()));
            return;
        }
        std_black_box(routine(&mut setup()));
        for _ in 0..self.sample_size {
            let mut input = setup();
            let start = Instant::now();
            std_black_box(routine(&mut input));
            self.samples.push(start.elapsed());
        }
    }
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos >= 1_000_000_000 {
        format!("{:.3} s", d.as_secs_f64())
    } else if nanos >= 1_000_000 {
        format!("{:.3} ms", d.as_secs_f64() * 1e3)
    } else if nanos >= 1_000 {
        format!("{:.3} µs", d.as_secs_f64() * 1e6)
    } else {
        format!("{nanos} ns")
    }
}

/// The benchmark manager: entry point mirroring `criterion::Criterion`.
pub struct Criterion {
    filter: Option<String>,
    test_mode: bool,
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            filter: None,
            test_mode: false,
            default_sample_size: 10,
        }
    }
}

impl Criterion {
    /// Applies CLI arguments: `--test`, `--bench` (ignored), `--exact`
    /// (ignored), and a positional substring filter.
    ///
    /// Unknown flags abort rather than being silently consumed: real
    /// criterion options this shim doesn't implement (e.g.
    /// `--save-baseline main`) would otherwise have their *values* read as
    /// benchmark filters, skipping everything without a hint of why.
    #[must_use]
    pub fn configure_from_args(mut self) -> Self {
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => self.test_mode = true,
                "--bench" | "--exact" | "--nocapture" | "--quiet" | "-q" => {}
                s if s.starts_with("--") => {
                    eprintln!(
                        "criterion shim: unsupported flag `{s}` \
                         (supported: --test, --bench, --exact, --nocapture, a substring filter)"
                    );
                    std::process::exit(1);
                }
                s => self.filter = Some(s.to_string()),
            }
        }
        self
    }

    /// Overrides the default number of samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.default_sample_size = n.max(1);
        self
    }

    /// Whether `--test` was passed (`cargo test --benches`): benchmarks
    /// run once, untimed. Load harnesses with their own driving loops
    /// check this to shrink to a smoke run.
    pub fn is_test_mode(&self) -> bool {
        self.test_mode
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
            throughput: None,
        }
    }

    /// Runs a standalone benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let sample_size = self.default_sample_size;
        self.run_one(&id.id, sample_size, None, f);
        self
    }

    fn run_one<F: FnMut(&mut Bencher)>(
        &self,
        full_id: &str,
        sample_size: usize,
        throughput: Option<Throughput>,
        mut f: F,
    ) {
        if let Some(filter) = &self.filter {
            if !full_id.contains(filter.as_str()) {
                return;
            }
        }
        let mut bencher = Bencher {
            sample_size,
            test_mode: self.test_mode,
            samples: Vec::with_capacity(sample_size),
        };
        f(&mut bencher);
        if self.test_mode {
            println!("test {full_id} ... ok");
            return;
        }
        let mut samples = bencher.samples;
        if samples.is_empty() {
            println!("{full_id:<48} (no samples)");
            return;
        }
        samples.sort_unstable();
        let median = samples[samples.len() / 2];
        let min = samples[0];
        let total: Duration = samples.iter().sum();
        let mean = total / samples.len() as u32;
        record_json(JsonRecord {
            id: full_id.to_string(),
            min_ns: min.as_nanos(),
            median_ns: median.as_nanos(),
            mean_ns: mean.as_nanos(),
            samples: samples.len(),
        });
        let rate = match throughput {
            Some(Throughput::Elements(n)) => {
                let per_sec = n as f64 / median.as_secs_f64();
                format!("  {per_sec:.0} elem/s")
            }
            Some(Throughput::Bytes(n)) => {
                let mib_per_sec = n as f64 / median.as_secs_f64() / (1024.0 * 1024.0);
                format!("  {mib_per_sec:.1} MiB/s")
            }
            None => String::new(),
        };
        println!(
            "{full_id:<48} time: [min {}  median {}  mean {}]{rate}",
            format_duration(min),
            format_duration(median),
            format_duration(mean),
        );
    }
}

/// A named collection of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    sample_size: Option<usize>,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(1));
        self
    }

    /// Annotates subsequent benchmarks with a throughput figure.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let full_id = format!("{}/{}", self.name, id.id);
        let sample_size = self
            .sample_size
            .unwrap_or(self.criterion.default_sample_size);
        self.criterion
            .run_one(&full_id, sample_size, self.throughput, f);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group. (All output already happened; exists for API parity.)
    pub fn finish(self) {}
}

/// Defines a function running the listed benchmark targets, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        /// Runs this group's benchmark targets (generated by
        /// `criterion_group!`).
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Defines `main` for a `harness = false` bench target, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
            $crate::flush_json_results();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut ran = 0u32;
        {
            let mut group = c.benchmark_group("shim");
            group.sample_size(3);
            group.throughput(Throughput::Elements(10));
            group.bench_function("count", |b| b.iter(|| ran += 1));
            group.bench_with_input(BenchmarkId::new("param", 7), &7, |b, &v| b.iter(|| v * 2));
            group.finish();
        }
        // 1 warm-up + 3 samples.
        assert_eq!(ran, 4);
    }

    #[test]
    fn iter_batched_calls_setup_per_sample() {
        let mut c = Criterion::default();
        let mut setups = 0u32;
        c.bench_function("batched", |b| {
            b.iter_batched(
                || {
                    setups += 1;
                    vec![1u8; 16]
                },
                |v| v.len(),
                BatchSize::SmallInput,
            )
        });
        assert_eq!(setups, 11);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("dinic", "4x8").to_string(), "dinic/4x8");
        assert_eq!(BenchmarkId::from_parameter(64).to_string(), "64");
    }
}
