//! Minimal JSON values, parser, and writer — shared by the HTTP wire
//! format (`helix-server`), the durable persistence layer in
//! `helix-core` (WAL records, version-DAG and session snapshots), and
//! the `bench_guard` results gate.
//!
//! The offline build environment has no serde, so this crate hand-rolls
//! the subset of JSON those layers need: the full value grammar with
//! proper string escaping, a recursion-depth limit, and order-preserving
//! objects. Numbers are `f64`, like JavaScript's — protocol integers
//! (iteration counts, byte sizes, nanosecond timings) stay exact up to
//! 2^53, far beyond anything the wire or the WAL carries.

use std::fmt;

/// Maximum nesting depth the parser accepts. Workflow reports are ~4
/// levels deep; the cap only exists so hostile input cannot overflow the
/// stack.
const MAX_DEPTH: usize = 64;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (stored as `f64`).
    Num(f64),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved when writing.
    Obj(Vec<(String, Json)>),
}

/// A parse failure: byte offset plus a short message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input where parsing failed.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Convenience constructor for a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Convenience constructor for an object from `(key, value)` pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Looks up a key in an object; `None` for missing keys and
    /// non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric value as a non-negative integer, if it is one exactly.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The key/value pairs, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// Parses one JSON document; trailing non-whitespace is an error.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut parser = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        parser.skip_ws();
        let value = parser.value(0)?;
        parser.skip_ws();
        if parser.pos != parser.bytes.len() {
            return Err(parser.err("trailing characters after value"));
        }
        Ok(value)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 9.0e15 {
                    write!(f, "{}", *n as i64)
                } else if n.is_finite() {
                    write!(f, "{n}")
                } else {
                    // JSON has no Inf/NaN; null is the least-bad encoding.
                    f.write_str("null")
                }
            }
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Obj(pairs) => {
                f.write_str("{")?;
                for (i, (key, value)) in pairs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, key)?;
                    f.write_str(":")?;
                    write!(f, "{value}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", byte as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected `{word}`")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(format!("unexpected character `{}`", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Copy unescaped runs wholesale; only stop at quotes/escapes.
            while let Some(c) = self.peek() {
                if c == b'"' || c == b'\\' || c < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                let run = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in string"))?;
                out.push_str(run);
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let code = self.unicode_escape()?;
                            out.push(code);
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    /// Parses the 4 hex digits after `\u` (cursor on the `u`), handling
    /// surrogate pairs.
    fn unicode_escape(&mut self) -> Result<char, JsonError> {
        self.pos += 1; // consume `u`
        let high = self.hex4()?;
        if (0xD800..0xDC00).contains(&high) {
            // High surrogate: require `\uXXXX` low surrogate.
            if self.bytes[self.pos..].starts_with(b"\\u") {
                self.pos += 2;
                let low = self.hex4()?;
                if (0xDC00..0xE000).contains(&low) {
                    let code = 0x10000 + ((high - 0xD800) << 10) + (low - 0xDC00);
                    return char::from_u32(code).ok_or_else(|| self.err("invalid surrogate pair"));
                }
            }
            return Err(self.err("unpaired surrogate"));
        }
        char::from_u32(high).ok_or_else(|| self.err("invalid \\u escape"))
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let value = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(value)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self.peek().is_some_and(|c| c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_values() {
        let text = r#"{"a":[1,2.5,-3],"b":{"c":null,"d":true},"e":"x\"y\\z"}"#;
        let value = Json::parse(text).unwrap();
        assert_eq!(Json::parse(&value.to_string()).unwrap(), value);
        assert_eq!(value.get("e").unwrap().as_str(), Some(r#"x"y\z"#));
        assert_eq!(value.get("a").unwrap().as_array().unwrap().len(), 3);
    }

    #[test]
    fn preserves_object_order() {
        let value = Json::obj([("zebra", Json::Num(1.0)), ("apple", Json::Num(2.0))]);
        assert_eq!(value.to_string(), r#"{"zebra":1,"apple":2}"#);
    }

    #[test]
    fn parses_escapes_and_unicode() {
        let value = Json::parse(r#""tab\t\u00e9\ud83d\ude00""#).unwrap();
        assert_eq!(value.as_str(), Some("tab\té😀"));
    }

    #[test]
    fn integers_stay_exact() {
        let value = Json::parse("9007199254740992").unwrap();
        assert_eq!(value.as_u64(), Some(9007199254740992));
        assert_eq!(value.to_string(), "9007199254740992");
        assert_eq!(Json::parse("12.5").unwrap().as_u64(), None);
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "\"unterminated",
            "1 2",
            "nul",
            "{\"a\" 1}",
            "\"\\q\"",
            "\"\\ud800\"",
        ] {
            assert!(Json::parse(bad).is_err(), "should reject: {bad}");
        }
    }

    #[test]
    fn rejects_excessive_nesting() {
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(Json::parse(&deep).is_err());
    }

    #[test]
    fn control_characters_are_escaped_on_write() {
        let value = Json::str("a\u{1}b\nc");
        assert_eq!(value.to_string(), "\"a\\u0001b\\nc\"");
        assert_eq!(Json::parse(&value.to_string()).unwrap(), value);
    }
}
