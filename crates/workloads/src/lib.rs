//! The paper's two demo applications, with synthetic data generators and
//! the iteration scripts used to reproduce Figure 2.
//!
//! * [`census`] — §3 Application 1: income classification over structured
//!   demographic records (UCI-Adult-like, synthesized).
//! * [`news`] + [`ie`] — §3 Application 2: person-mention extraction from
//!   news articles (synthetic corpus over a name gazetteer). [`news`]
//!   additionally hosts [`news::news_workflow`], a document-density
//!   classifier over the same corpus whose wide extractor fan-out
//!   exercises the engine's wave scheduler.
//! * [`iterations`] — the shared "human-in-the-loop" machinery: a list of
//!   workflow modifications, each tagged with the paper's iteration
//!   category (data pre-processing / ML / evaluation).
//! * [`active_learning`] — the label-driven iteration loop: rank
//!   uncertain predictions, oracle-label a batch, append the labels as a
//!   data delta, retrain with partition-level upstream reuse.

#![warn(missing_docs)]

pub mod active_learning;
pub mod census;
pub mod ie;
pub mod iterations;
pub mod news;

pub use active_learning::{run_active_learning, ActiveLearningRound, ActiveLearningSpec};
pub use iterations::{IterationSpec, IterationStage};
