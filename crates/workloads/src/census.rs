//! The Census application (paper §3, Fig. 1a): income classification from
//! demographic records, plus the synthetic data generator and the Fig. 2(b)
//! iteration script.

use crate::iterations::{IterationSpec, IterationStage};
use helix_core::ops::{EvalSpec, ExtractorKind, LearnerSpec, MetricKind, ModelType};
use helix_core::workflow::Workflow;
use helix_core::Result;
use helix_dataflow::DataType;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::io::Write as _;
use std::path::{Path, PathBuf};

const EDUCATIONS: &[&str] = &[
    "Preschool",
    "HS-grad",
    "Some-college",
    "Assoc-voc",
    "Bachelors",
    "Masters",
    "Doctorate",
];
const OCCUPATIONS: &[&str] = &[
    "Tech-support",
    "Craft-repair",
    "Sales",
    "Exec-managerial",
    "Prof-specialty",
    "Handlers-cleaners",
    "Machine-op-inspct",
    "Adm-clerical",
    "Farming-fishing",
    "Transport-moving",
    "Protective-serv",
    "Armed-Forces",
];
const MARITAL: &[&str] = &[
    "Never-married",
    "Married-civ-spouse",
    "Divorced",
    "Separated",
    "Widowed",
];
const RACES: &[&str] = &[
    "White",
    "Black",
    "Asian-Pac-Islander",
    "Amer-Indian-Eskimo",
    "Other",
];
const SEXES: &[&str] = &["Male", "Female"];

/// Column order of the generated CSV files.
pub const FIELDS: &[(&str, DataType)] = &[
    ("age", DataType::Int),
    ("education", DataType::Str),
    ("occupation", DataType::Str),
    ("marital_status", DataType::Str),
    ("race", DataType::Str),
    ("sex", DataType::Str),
    ("capital_loss", DataType::Int),
    ("hours_per_week", DataType::Int),
    ("target", DataType::Int),
];

/// Generator settings.
#[derive(Debug, Clone)]
pub struct CensusDataSpec {
    /// Training rows.
    pub train_rows: usize,
    /// Held-out rows.
    pub test_rows: usize,
    /// RNG seed.
    pub seed: u64,
    /// Fraction of fields replaced by `?` (missing markers).
    pub missing_rate: f64,
}

impl Default for CensusDataSpec {
    fn default() -> Self {
        CensusDataSpec {
            train_rows: 30_000,
            test_rows: 8_000,
            seed: 7,
            missing_rate: 0.01,
        }
    }
}

impl CensusDataSpec {
    /// Bench-scale settings: `factor` multiplies a 300-train/100-test-row
    /// base, so factors 10–1000 span 3 000–300 000 training rows. The
    /// seed is fixed, so the same factor always generates byte-identical
    /// data (see docs/PERFORMANCE.md for the crossover measurements these
    /// feed).
    pub fn scaled(factor: usize) -> Self {
        let factor = factor.max(1);
        CensusDataSpec {
            train_rows: 300 * factor,
            test_rows: 100 * factor,
            ..Default::default()
        }
    }
}

/// Generates `train.csv` and `test.csv` under `dir` and returns their
/// paths. The label follows a ground-truth logistic model over education,
/// age, hours, and marital status, so feature-engineering iterations move
/// the measured accuracy.
pub fn generate_census(dir: &Path, spec: &CensusDataSpec) -> Result<(PathBuf, PathBuf)> {
    std::fs::create_dir_all(dir)?;
    let train = dir.join("train.csv");
    let test = dir.join("test.csv");
    let mut rng = StdRng::seed_from_u64(spec.seed);
    write_split(&train, spec.train_rows, spec, &mut rng)?;
    write_split(&test, spec.test_rows, spec, &mut rng)?;
    Ok((train, test))
}

fn write_split(path: &Path, rows: usize, spec: &CensusDataSpec, rng: &mut StdRng) -> Result<()> {
    let file = std::fs::File::create(path)?;
    let mut w = std::io::BufWriter::new(file);
    for _ in 0..rows {
        writeln!(w, "{}", census_row(spec, rng))?;
    }
    w.flush()?;
    Ok(())
}

/// One labeled row drawn from the ground-truth model: education and
/// marriage dominate, age and hours matter, occupation interacts with
/// education (so the eduXocc iteration helps), race and sex carry no
/// signal.
fn census_row(spec: &CensusDataSpec, rng: &mut StdRng) -> String {
    let age: i64 = rng.gen_range(17..=90);
    let edu_idx = rng.gen_range(0..EDUCATIONS.len());
    let occ_idx = rng.gen_range(0..OCCUPATIONS.len());
    let ms_idx = rng.gen_range(0..MARITAL.len());
    let race_idx = rng.gen_range(0..RACES.len());
    let sex_idx = rng.gen_range(0..SEXES.len());
    let capital_loss: i64 = if rng.gen_bool(0.1) {
        rng.gen_range(100..4000)
    } else {
        0
    };
    let hours: i64 = rng.gen_range(10..=80);

    let mut score = -3.2;
    score += 0.55 * edu_idx as f64;
    score += if ms_idx == 1 { 1.1 } else { -0.2 };
    score += 0.035 * (age as f64 - 38.0);
    score += 0.022 * (hours as f64 - 40.0);
    score += if edu_idx >= 4 && occ_idx == 3 {
        0.9
    } else {
        0.0
    };
    score += if capital_loss > 1500 { 0.4 } else { 0.0 };
    let p = 1.0 / (1.0 + (-score).exp());
    let target = i64::from(rng.gen_bool(p.clamp(0.02, 0.98)));

    let mut fields = vec![
        age.to_string(),
        EDUCATIONS[edu_idx].to_string(),
        OCCUPATIONS[occ_idx].to_string(),
        MARITAL[ms_idx].to_string(),
        RACES[race_idx].to_string(),
        SEXES[sex_idx].to_string(),
        capital_loss.to_string(),
        hours.to_string(),
    ];
    for field in fields.iter_mut() {
        if rng.gen_bool(spec.missing_rate) {
            *field = "?".to_string();
        }
    }
    fields.push(target.to_string());
    fields.join(",")
}

/// Synthesizes `count` freshly labeled rows from the ground-truth model —
/// the oracle of the active-learning loop (`crate::active_learning`),
/// standing in for the human who labels the examples the model is least
/// sure about. No missing markers: an oracle answers every field.
pub fn labeled_rows(count: usize, seed: u64) -> Vec<String> {
    let spec = CensusDataSpec {
        missing_rate: 0.0,
        ..Default::default()
    };
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count).map(|_| census_row(&spec, &mut rng)).collect()
}

/// Parameters of the Census workflow that iterations mutate. Mirrors the
/// dials the paper's demo exposes (Fig. 1a's `+`/`-` edits).
#[derive(Debug, Clone)]
pub struct CensusParams {
    /// Path to the training CSV.
    pub train_path: PathBuf,
    /// Path to the test CSV.
    pub test_path: PathBuf,
    /// `regParam` of the Learner.
    pub reg_param: f64,
    /// Learner epochs.
    pub epochs: usize,
    /// Learner family.
    pub model_type: ModelType,
    /// Age bucketizer bins.
    pub age_bins: usize,
    /// Whether `marital_status` is in the extractor list (the paper's `+ms`).
    pub include_marital_status: bool,
    /// Whether the `edu × occ` interaction is wired in.
    pub include_interaction: bool,
    /// Whether `capital_loss` is wired in.
    pub include_capital_loss: bool,
    /// Metrics computed by the `checked` Reducer.
    pub metrics: Vec<MetricKind>,
}

impl CensusParams {
    /// Initial-version parameters for data rooted at `dir`.
    pub fn initial(dir: &Path) -> Self {
        CensusParams {
            train_path: dir.join("train.csv"),
            test_path: dir.join("test.csv"),
            reg_param: 0.1,
            epochs: 4,
            model_type: ModelType::LogisticRegression,
            age_bins: 10,
            include_marital_status: false,
            include_interaction: false,
            include_capital_loss: true,
            metrics: vec![MetricKind::Accuracy],
        }
    }

    /// Benchmark parameters: every optional feature wired in (maximum
    /// partitionable width) and a single training epoch, so the
    /// row-parallel extract/assemble/apply stages — not the learner's
    /// inherently sequential epochs — dominate the measured run.
    pub fn bench(dir: &Path) -> Self {
        CensusParams {
            epochs: 1,
            include_marital_status: true,
            include_interaction: true,
            ..CensusParams::initial(dir)
        }
    }
}

/// Builds the Census workflow of Fig. 1a for the given parameters.
pub fn census_workflow(params: &CensusParams) -> Result<Workflow> {
    let mut w = Workflow::new("Census");
    let data = w.csv_source("data", &params.train_path, Some(&params.test_path))?;
    let rows = w.csv_scanner("rows", &data, FIELDS)?;

    let age = w.field_extractor("age", &rows, "age", ExtractorKind::Numeric)?;
    let edu = w.field_extractor("edu", &rows, "education", ExtractorKind::Categorical)?;
    let occ = w.field_extractor("occ", &rows, "occupation", ExtractorKind::Categorical)?;
    let cl = w.field_extractor("cl", &rows, "capital_loss", ExtractorKind::Numeric)?;
    // Declared like the paper's program; sliced out unless wired below.
    let race = w.field_extractor("race", &rows, "race", ExtractorKind::Categorical)?;
    let ms = w.field_extractor("ms", &rows, "marital_status", ExtractorKind::Categorical)?;
    let target = w.field_extractor("target", &rows, "target", ExtractorKind::Numeric)?;

    let age_bucket = w.bucketizer("ageBucket", &age, params.age_bins)?;
    let edu_x_occ = w.interaction("eduXocc", &[&edu, &occ])?;

    let hours = w.field_extractor("hours", &rows, "hours_per_week", ExtractorKind::Numeric)?;
    let hours_bucket = w.bucketizer("hoursBucket", &hours, 6)?;
    let cl_bucket = w.bucketizer("clBucket", &cl, 5)?;
    let sex = w.field_extractor("sex", &rows, "sex", ExtractorKind::Categorical)?;
    let mut extractors = vec![&edu, &occ, &age_bucket, &hours_bucket, &sex];
    if params.include_interaction {
        extractors.push(&edu_x_occ);
    }
    if params.include_capital_loss {
        extractors.push(&cl_bucket);
    }
    if params.include_marital_status {
        extractors.push(&ms);
    }
    let _ = race; // never wired — exercised by the program slicer

    let income = w.assemble("income", &rows, &extractors, &target)?;
    let predictions = w.learner(
        "predictions",
        &income,
        LearnerSpec {
            model_type: params.model_type,
            reg_param: params.reg_param,
            epochs: params.epochs,
            ..Default::default()
        },
    )?;
    let checked = w.evaluate(
        "checked",
        &predictions,
        EvalSpec {
            metrics: params.metrics.clone(),
            split: helix_core::SPLIT_TEST.into(),
        },
    )?;
    w.output(&predictions);
    w.output(&checked);
    Ok(w)
}

/// The Fig. 2(b) iteration script: ten changes cycling through the
/// paper's three categories (purple/orange/green).
pub fn census_iterations() -> Vec<IterationSpec<CensusParams>> {
    // The first two modifications are data-pre-processing so the
    // DeepDive-sim series (which cannot accept ML/eval edits) has exactly
    // the paper's "missing data for iteration > 2" shape in Fig. 2(b).
    vec![
        IterationSpec::new(
            "add marital_status feature (+msExt)",
            IterationStage::DataPreProcessing,
            |p: &mut CensusParams| p.include_marital_status = true,
        ),
        IterationSpec::new(
            "add edu×occ interaction feature",
            IterationStage::DataPreProcessing,
            |p: &mut CensusParams| p.include_interaction = true,
        ),
        IterationSpec::new(
            "decrease regularization",
            IterationStage::MachineLearning,
            |p: &mut CensusParams| {
                p.reg_param = 0.01;
            },
        ),
        IterationSpec::new(
            "add F1/precision/recall metrics",
            IterationStage::Evaluation,
            |p: &mut CensusParams| {
                p.metrics = vec![
                    MetricKind::Accuracy,
                    MetricKind::F1,
                    MetricKind::Precision,
                    MetricKind::Recall,
                ];
            },
        ),
        IterationSpec::new(
            "double training epochs",
            IterationStage::MachineLearning,
            |p: &mut CensusParams| {
                p.epochs *= 2;
            },
        ),
        IterationSpec::new(
            "add log-loss metric",
            IterationStage::Evaluation,
            |p: &mut CensusParams| {
                p.metrics.push(MetricKind::LogLoss);
            },
        ),
        IterationSpec::new(
            "re-bin age buckets",
            IterationStage::DataPreProcessing,
            |p: &mut CensusParams| {
                p.age_bins = 8;
            },
        ),
        IterationSpec::new(
            "try naive Bayes model",
            IterationStage::MachineLearning,
            |p: &mut CensusParams| {
                p.model_type = ModelType::NaiveBayes;
            },
        ),
        IterationSpec::new(
            "back to logistic regression",
            IterationStage::MachineLearning,
            |p: &mut CensusParams| {
                p.model_type = ModelType::LogisticRegression;
            },
        ),
        IterationSpec::new(
            "check precision only",
            IterationStage::Evaluation,
            |p: &mut CensusParams| {
                p.metrics = vec![MetricKind::Precision];
            },
        ),
        IterationSpec::new(
            "back to accuracy-only evaluation",
            IterationStage::Evaluation,
            |p: &mut CensusParams| {
                p.metrics = vec![MetricKind::Accuracy];
            },
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("helix-census-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn generator_is_deterministic_and_learnable() {
        let dir = tmpdir("gen");
        let spec = CensusDataSpec {
            train_rows: 500,
            test_rows: 100,
            ..Default::default()
        };
        let (train1, _) = generate_census(&dir, &spec).unwrap();
        let contents1 = std::fs::read_to_string(&train1).unwrap();
        let (train2, _) = generate_census(&dir, &spec).unwrap();
        let contents2 = std::fs::read_to_string(&train2).unwrap();
        assert_eq!(contents1, contents2, "same seed, same data");
        assert_eq!(contents1.lines().count(), 500);
        // Both labels present.
        let positives = contents1.lines().filter(|l| l.ends_with(",1")).count();
        assert!(positives > 50 && positives < 450, "positives = {positives}");
    }

    #[test]
    fn workflow_builds_and_slices_race() {
        let dir = tmpdir("wf");
        generate_census(
            &dir,
            &CensusDataSpec {
                train_rows: 50,
                test_rows: 20,
                ..Default::default()
            },
        )
        .unwrap();
        let params = CensusParams::initial(&dir);
        let w = census_workflow(&params).unwrap();
        let slice = helix_core::slicing::slice(&w).unwrap();
        assert!(!slice.active[w.by_name("race").unwrap().index()]);
        assert!(
            !slice.active[w.by_name("ms").unwrap().index()],
            "ms off initially"
        );
        assert!(slice.active[w.by_name("edu").unwrap().index()]);
    }

    #[test]
    fn iteration_script_has_all_three_stages() {
        let iters = census_iterations();
        assert_eq!(iters.len(), 11);
        for stage in [
            IterationStage::DataPreProcessing,
            IterationStage::MachineLearning,
            IterationStage::Evaluation,
        ] {
            assert!(iters.iter().any(|i| i.stage == stage), "{stage:?} missing");
        }
    }

    #[test]
    fn iterations_change_workflow_signatures() {
        let dir = tmpdir("sig");
        let mut params = CensusParams::initial(&dir);
        let w0 = census_workflow(&params).unwrap();
        let s0 = helix_core::signature::compute_signatures(&w0).unwrap();
        for spec in census_iterations() {
            (spec.apply)(&mut params);
            let w = census_workflow(&params).unwrap();
            let s = helix_core::signature::compute_signatures(&w).unwrap();
            assert_ne!(s0, s, "iteration `{}` must alter the DAG", spec.description);
        }
    }

    #[test]
    fn end_to_end_small_run() {
        let dir = tmpdir("e2e");
        generate_census(
            &dir,
            &CensusDataSpec {
                train_rows: 400,
                test_rows: 100,
                ..Default::default()
            },
        )
        .unwrap();
        let params = CensusParams::initial(&dir);
        let w = census_workflow(&params).unwrap();
        let engine = std::sync::Arc::new(
            helix_core::Engine::new(helix_core::EngineConfig::helix(dir.join("store"))).unwrap(),
        );
        let mut session = helix_core::Session::new(engine, "census-test", w);
        let report = session.iterate().unwrap();
        let acc = report.metric("accuracy").unwrap();
        assert!(acc > 0.6, "model should beat chance, got {acc}");
    }
}
