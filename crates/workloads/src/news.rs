//! Synthetic news corpus generator for the information-extraction task.
//!
//! The paper's IE application "identifies person mentions from news
//! articles" (§3). We synthesize articles from sentence templates over a
//! person-name gazetteer, with organizations and places as capitalized
//! distractors, and emit gold person-mention spans alongside — replacing
//! the proprietary news corpus with an equivalent that exercises the same
//! pipeline (see DESIGN.md substitutions).

use helix_core::Result;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// First names used by the generator (and partially by the gazetteer).
pub const FIRST_NAMES: &[&str] = &[
    "James",
    "Mary",
    "Robert",
    "Patricia",
    "John",
    "Jennifer",
    "Michael",
    "Linda",
    "David",
    "Elizabeth",
    "William",
    "Barbara",
    "Richard",
    "Susan",
    "Joseph",
    "Jessica",
    "Thomas",
    "Sarah",
    "Carlos",
    "Nancy",
    "Daniel",
    "Lisa",
    "Matthew",
    "Betty",
    "Anthony",
    "Margaret",
    "Mark",
    "Sandra",
    "Donald",
    "Ashley",
    "Steven",
    "Kimberly",
    "Paul",
    "Emily",
    "Andrew",
    "Donna",
    "Joshua",
    "Michelle",
    "Kenneth",
    "Dorothy",
];

/// Last names used by the generator.
pub const LAST_NAMES: &[&str] = &[
    "Smith",
    "Johnson",
    "Williams",
    "Brown",
    "Jones",
    "Garcia",
    "Miller",
    "Davis",
    "Rodriguez",
    "Martinez",
    "Hernandez",
    "Lopez",
    "Gonzalez",
    "Wilson",
    "Anderson",
    "Thomas",
    "Taylor",
    "Moore",
    "Jackson",
    "Martin",
    "Lee",
    "Perez",
    "Thompson",
    "White",
    "Harris",
    "Sanchez",
    "Clark",
    "Ramirez",
    "Lewis",
    "Robinson",
    "Walker",
    "Young",
    "Allen",
    "King",
    "Wright",
    "Scott",
    "Torres",
    "Nguyen",
    "Hill",
    "Flores",
];

const ORGS: &[&str] = &[
    "Acme Corporation",
    "Global Dynamics",
    "Initech",
    "Umbrella Holdings",
    "Stark Industries",
    "Wayne Enterprises",
    "Cyberdyne Systems",
    "Tyrell Corporation",
    "Hooli",
    "Vehement Capital",
];

const PLACES: &[&str] = &[
    "Springfield",
    "Rivertown",
    "Lakeside",
    "Centerville",
    "Fairview",
    "Georgetown",
    "Salem",
    "Madison",
    "Clinton",
    "Arlington",
];

const VERBS: &[&str] = &[
    "announced",
    "criticized",
    "praised",
    "met with",
    "interviewed",
    "defended",
    "endorsed",
];
const TOPICS: &[&str] = &[
    "the new budget proposal",
    "a controversial merger",
    "the quarterly results",
    "an ambitious infrastructure plan",
    "the ongoing negotiations",
    "a landmark settlement",
];

/// A gold person mention: byte span within its document.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GoldMention {
    /// Document id (line number in the corpus file).
    pub doc_id: i64,
    /// Byte offset of the mention start.
    pub start: i64,
    /// Byte offset one past the mention end.
    pub end: i64,
}

/// Generator settings.
#[derive(Debug, Clone)]
pub struct NewsDataSpec {
    /// Number of documents.
    pub docs: usize,
    /// Sentences per document (inclusive range).
    pub sentences_per_doc: (usize, usize),
    /// RNG seed.
    pub seed: u64,
}

impl Default for NewsDataSpec {
    fn default() -> Self {
        NewsDataSpec {
            docs: 900,
            sentences_per_doc: (3, 7),
            seed: 13,
        }
    }
}

/// Output of [`generate_news`].
#[derive(Debug, Clone)]
pub struct NewsData {
    /// One-document-per-line corpus file.
    pub corpus_path: PathBuf,
    /// Gold mentions CSV (`doc_id,start,end`).
    pub gold_path: PathBuf,
    /// Number of gold mentions emitted.
    pub mentions: usize,
}

/// Generates the corpus and gold files under `dir`.
pub fn generate_news(dir: &Path, spec: &NewsDataSpec) -> Result<NewsData> {
    std::fs::create_dir_all(dir)?;
    let corpus_path = dir.join("corpus.txt");
    let gold_path = dir.join("gold.csv");
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let corpus_file = std::fs::File::create(&corpus_path)?;
    let gold_file = std::fs::File::create(&gold_path)?;
    let mut corpus = std::io::BufWriter::new(corpus_file);
    let mut gold = std::io::BufWriter::new(gold_file);
    let mut mentions = 0usize;

    for doc_id in 0..spec.docs {
        let mut doc = String::new();
        let n_sents = rng.gen_range(spec.sentences_per_doc.0..=spec.sentences_per_doc.1);
        for _ in 0..n_sents {
            if !doc.is_empty() {
                doc.push(' ');
            }
            let spans = write_sentence(&mut doc, &mut rng);
            for (start, end) in spans {
                writeln!(gold, "{doc_id},{start},{end}")?;
                mentions += 1;
            }
        }
        writeln!(corpus, "{doc}")?;
    }
    corpus.flush()?;
    gold.flush()?;
    Ok(NewsData {
        corpus_path,
        gold_path,
        mentions,
    })
}

/// Appends one sentence to `doc`, returning byte spans of person mentions.
fn write_sentence(doc: &mut String, rng: &mut StdRng) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    let push_person = |doc: &mut String, rng: &mut StdRng, spans: &mut Vec<(usize, usize)>| {
        let first = FIRST_NAMES[rng.gen_range(0..FIRST_NAMES.len())];
        let start = doc.len();
        if rng.gen_bool(0.2) {
            // Single-name mention ("Cher" style).
            doc.push_str(first);
        } else {
            let last = LAST_NAMES[rng.gen_range(0..LAST_NAMES.len())];
            doc.push_str(first);
            doc.push(' ');
            doc.push_str(last);
        }
        spans.push((start, doc.len()));
    };

    match rng.gen_range(0..5) {
        0 => {
            // "<Title> <Person> <verb> <topic> in <Place>."
            doc.push_str(if rng.gen_bool(0.5) { "Dr. " } else { "Gov. " });
            push_person(doc, rng, &mut spans);
            doc.push(' ');
            doc.push_str(VERBS[rng.gen_range(0..VERBS.len())]);
            doc.push(' ');
            doc.push_str(TOPICS[rng.gen_range(0..TOPICS.len())]);
            doc.push_str(" in ");
            doc.push_str(PLACES[rng.gen_range(0..PLACES.len())]);
            doc.push('.');
        }
        1 => {
            // "<Org> <verb> <topic>."  (no person; distractor capitals)
            doc.push_str(ORGS[rng.gen_range(0..ORGS.len())]);
            doc.push(' ');
            doc.push_str(VERBS[rng.gen_range(0..VERBS.len())]);
            doc.push(' ');
            doc.push_str(TOPICS[rng.gen_range(0..TOPICS.len())]);
            doc.push('.');
        }
        2 => {
            // "<Person> of <Org> <verb> <topic>."
            push_person(doc, rng, &mut spans);
            doc.push_str(" of ");
            doc.push_str(ORGS[rng.gen_range(0..ORGS.len())]);
            doc.push(' ');
            doc.push_str(VERBS[rng.gen_range(0..VERBS.len())]);
            doc.push(' ');
            doc.push_str(TOPICS[rng.gen_range(0..TOPICS.len())]);
            doc.push('.');
        }
        3 => {
            // "Residents of <Place> heard <Person> speak."
            doc.push_str("Residents of ");
            doc.push_str(PLACES[rng.gen_range(0..PLACES.len())]);
            doc.push_str(" heard ");
            push_person(doc, rng, &mut spans);
            doc.push_str(" speak.");
        }
        _ => {
            // "<Person> met <Person> at <Org>."
            push_person(doc, rng, &mut spans);
            doc.push_str(" met ");
            push_person(doc, rng, &mut spans);
            doc.push_str(" at ");
            doc.push_str(ORGS[rng.gen_range(0..ORGS.len())]);
            doc.push('.');
        }
    }
    spans
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("helix-news-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn generator_is_deterministic() {
        let dir = tmpdir("det");
        let spec = NewsDataSpec {
            docs: 30,
            ..Default::default()
        };
        let d1 = generate_news(&dir, &spec).unwrap();
        let c1 = std::fs::read_to_string(&d1.corpus_path).unwrap();
        let d2 = generate_news(&dir, &spec).unwrap();
        let c2 = std::fs::read_to_string(&d2.corpus_path).unwrap();
        assert_eq!(c1, c2);
        assert_eq!(d1.mentions, d2.mentions);
    }

    #[test]
    fn gold_spans_point_at_person_names() {
        let dir = tmpdir("spans");
        let data = generate_news(
            &dir,
            &NewsDataSpec {
                docs: 40,
                ..Default::default()
            },
        )
        .unwrap();
        let corpus: Vec<String> = std::fs::read_to_string(&data.corpus_path)
            .unwrap()
            .lines()
            .map(String::from)
            .collect();
        let gold = std::fs::read_to_string(&data.gold_path).unwrap();
        let mut checked = 0;
        for line in gold.lines() {
            let parts: Vec<&str> = line.split(',').collect();
            let (doc, start, end): (usize, usize, usize) = (
                parts[0].parse().unwrap(),
                parts[1].parse().unwrap(),
                parts[2].parse().unwrap(),
            );
            let mention = &corpus[doc][start..end];
            let first_word = mention.split(' ').next().unwrap();
            assert!(
                FIRST_NAMES.contains(&first_word),
                "span `{mention}` does not start with a first name"
            );
            checked += 1;
        }
        assert!(checked > 20, "expected plenty of mentions, got {checked}");
    }

    #[test]
    fn corpus_contains_distractors() {
        let dir = tmpdir("distract");
        let data = generate_news(
            &dir,
            &NewsDataSpec {
                docs: 60,
                ..Default::default()
            },
        )
        .unwrap();
        let corpus = std::fs::read_to_string(&data.corpus_path).unwrap();
        assert!(ORGS.iter().any(|org| corpus.contains(org)), "orgs appear");
        assert!(
            PLACES.iter().any(|place| corpus.contains(place)),
            "places appear"
        );
    }
}
