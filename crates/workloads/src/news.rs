//! Synthetic news corpus generator for the information-extraction task,
//! plus a document-classification workflow over the same corpus.
//!
//! The paper's IE application "identifies person mentions from news
//! articles" (§3). We synthesize articles from sentence templates over a
//! person-name gazetteer, with organizations and places as capitalized
//! distractors, and emit gold person-mention spans alongside — replacing
//! the proprietary news corpus with an equivalent that exercises the same
//! pipeline (see DESIGN.md substitutions).
//!
//! [`news_workflow`] is the third demo workload: a document-level
//! classifier ("is this article person-dense?") whose feature extractors
//! fan out from one corpus scan — a wide, shallow DAG that complements
//! Census (structured, narrow) and IE (deep UDF chain) in the scheduler's
//! cross-workload test matrix.

use crate::iterations::{IterationSpec, IterationStage};
use helix_core::ops::{EvalSpec, LearnerSpec, MetricKind, Udf};
use helix_core::workflow::Workflow;
use helix_core::Result;
use helix_dataflow::fx::FxHashMap;
use helix_dataflow::{DataCollection, DataType, Row, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// First names used by the generator (and partially by the gazetteer).
pub const FIRST_NAMES: &[&str] = &[
    "James",
    "Mary",
    "Robert",
    "Patricia",
    "John",
    "Jennifer",
    "Michael",
    "Linda",
    "David",
    "Elizabeth",
    "William",
    "Barbara",
    "Richard",
    "Susan",
    "Joseph",
    "Jessica",
    "Thomas",
    "Sarah",
    "Carlos",
    "Nancy",
    "Daniel",
    "Lisa",
    "Matthew",
    "Betty",
    "Anthony",
    "Margaret",
    "Mark",
    "Sandra",
    "Donald",
    "Ashley",
    "Steven",
    "Kimberly",
    "Paul",
    "Emily",
    "Andrew",
    "Donna",
    "Joshua",
    "Michelle",
    "Kenneth",
    "Dorothy",
];

/// Last names used by the generator.
pub const LAST_NAMES: &[&str] = &[
    "Smith",
    "Johnson",
    "Williams",
    "Brown",
    "Jones",
    "Garcia",
    "Miller",
    "Davis",
    "Rodriguez",
    "Martinez",
    "Hernandez",
    "Lopez",
    "Gonzalez",
    "Wilson",
    "Anderson",
    "Thomas",
    "Taylor",
    "Moore",
    "Jackson",
    "Martin",
    "Lee",
    "Perez",
    "Thompson",
    "White",
    "Harris",
    "Sanchez",
    "Clark",
    "Ramirez",
    "Lewis",
    "Robinson",
    "Walker",
    "Young",
    "Allen",
    "King",
    "Wright",
    "Scott",
    "Torres",
    "Nguyen",
    "Hill",
    "Flores",
];

const ORGS: &[&str] = &[
    "Acme Corporation",
    "Global Dynamics",
    "Initech",
    "Umbrella Holdings",
    "Stark Industries",
    "Wayne Enterprises",
    "Cyberdyne Systems",
    "Tyrell Corporation",
    "Hooli",
    "Vehement Capital",
];

const PLACES: &[&str] = &[
    "Springfield",
    "Rivertown",
    "Lakeside",
    "Centerville",
    "Fairview",
    "Georgetown",
    "Salem",
    "Madison",
    "Clinton",
    "Arlington",
];

const VERBS: &[&str] = &[
    "announced",
    "criticized",
    "praised",
    "met with",
    "interviewed",
    "defended",
    "endorsed",
];
const TOPICS: &[&str] = &[
    "the new budget proposal",
    "a controversial merger",
    "the quarterly results",
    "an ambitious infrastructure plan",
    "the ongoing negotiations",
    "a landmark settlement",
];

/// A gold person mention: byte span within its document.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GoldMention {
    /// Document id (line number in the corpus file).
    pub doc_id: i64,
    /// Byte offset of the mention start.
    pub start: i64,
    /// Byte offset one past the mention end.
    pub end: i64,
}

/// Generator settings.
#[derive(Debug, Clone)]
pub struct NewsDataSpec {
    /// Number of documents.
    pub docs: usize,
    /// Sentences per document (inclusive range).
    pub sentences_per_doc: (usize, usize),
    /// RNG seed.
    pub seed: u64,
}

impl Default for NewsDataSpec {
    fn default() -> Self {
        NewsDataSpec {
            docs: 900,
            sentences_per_doc: (3, 7),
            seed: 13,
        }
    }
}

impl NewsDataSpec {
    /// Bench-scale settings: `factor` multiplies a 30-document base, so
    /// factors 10–1000 span 300–30 000 documents (serving both the news
    /// classifier and the IE pipeline, which read the same corpus). The
    /// seed is fixed, so the same factor always generates byte-identical
    /// data.
    pub fn scaled(factor: usize) -> Self {
        NewsDataSpec {
            docs: 30 * factor.max(1),
            ..Default::default()
        }
    }
}

/// Output of [`generate_news`].
#[derive(Debug, Clone)]
pub struct NewsData {
    /// One-document-per-line corpus file.
    pub corpus_path: PathBuf,
    /// Gold mentions CSV (`doc_id,start,end`).
    pub gold_path: PathBuf,
    /// Number of gold mentions emitted.
    pub mentions: usize,
}

/// Generates the corpus and gold files under `dir`.
pub fn generate_news(dir: &Path, spec: &NewsDataSpec) -> Result<NewsData> {
    std::fs::create_dir_all(dir)?;
    let corpus_path = dir.join("corpus.txt");
    let gold_path = dir.join("gold.csv");
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let corpus_file = std::fs::File::create(&corpus_path)?;
    let gold_file = std::fs::File::create(&gold_path)?;
    let mut corpus = std::io::BufWriter::new(corpus_file);
    let mut gold = std::io::BufWriter::new(gold_file);
    let mut mentions = 0usize;

    for doc_id in 0..spec.docs {
        let mut doc = String::new();
        let n_sents = rng.gen_range(spec.sentences_per_doc.0..=spec.sentences_per_doc.1);
        for _ in 0..n_sents {
            if !doc.is_empty() {
                doc.push(' ');
            }
            let spans = write_sentence(&mut doc, &mut rng);
            for (start, end) in spans {
                writeln!(gold, "{doc_id},{start},{end}")?;
                mentions += 1;
            }
        }
        writeln!(corpus, "{doc}")?;
    }
    corpus.flush()?;
    gold.flush()?;
    Ok(NewsData {
        corpus_path,
        gold_path,
        mentions,
    })
}

/// Appends one sentence to `doc`, returning byte spans of person mentions.
fn write_sentence(doc: &mut String, rng: &mut StdRng) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    let push_person = |doc: &mut String, rng: &mut StdRng, spans: &mut Vec<(usize, usize)>| {
        let first = FIRST_NAMES[rng.gen_range(0..FIRST_NAMES.len())];
        let start = doc.len();
        if rng.gen_bool(0.2) {
            // Single-name mention ("Cher" style).
            doc.push_str(first);
        } else {
            let last = LAST_NAMES[rng.gen_range(0..LAST_NAMES.len())];
            doc.push_str(first);
            doc.push(' ');
            doc.push_str(last);
        }
        spans.push((start, doc.len()));
    };

    match rng.gen_range(0..5) {
        0 => {
            // "<Title> <Person> <verb> <topic> in <Place>."
            doc.push_str(if rng.gen_bool(0.5) { "Dr. " } else { "Gov. " });
            push_person(doc, rng, &mut spans);
            doc.push(' ');
            doc.push_str(VERBS[rng.gen_range(0..VERBS.len())]);
            doc.push(' ');
            doc.push_str(TOPICS[rng.gen_range(0..TOPICS.len())]);
            doc.push_str(" in ");
            doc.push_str(PLACES[rng.gen_range(0..PLACES.len())]);
            doc.push('.');
        }
        1 => {
            // "<Org> <verb> <topic>."  (no person; distractor capitals)
            doc.push_str(ORGS[rng.gen_range(0..ORGS.len())]);
            doc.push(' ');
            doc.push_str(VERBS[rng.gen_range(0..VERBS.len())]);
            doc.push(' ');
            doc.push_str(TOPICS[rng.gen_range(0..TOPICS.len())]);
            doc.push('.');
        }
        2 => {
            // "<Person> of <Org> <verb> <topic>."
            push_person(doc, rng, &mut spans);
            doc.push_str(" of ");
            doc.push_str(ORGS[rng.gen_range(0..ORGS.len())]);
            doc.push(' ');
            doc.push_str(VERBS[rng.gen_range(0..VERBS.len())]);
            doc.push(' ');
            doc.push_str(TOPICS[rng.gen_range(0..TOPICS.len())]);
            doc.push('.');
        }
        3 => {
            // "Residents of <Place> heard <Person> speak."
            doc.push_str("Residents of ");
            doc.push_str(PLACES[rng.gen_range(0..PLACES.len())]);
            doc.push_str(" heard ");
            push_person(doc, rng, &mut spans);
            doc.push_str(" speak.");
        }
        _ => {
            // "<Person> met <Person> at <Org>."
            push_person(doc, rng, &mut spans);
            doc.push_str(" met ");
            push_person(doc, rng, &mut spans);
            doc.push_str(" at ");
            doc.push_str(ORGS[rng.gen_range(0..ORGS.len())]);
            doc.push('.');
        }
    }
    spans
}

// --- The news-classification workload -----------------------------------

/// Parameters of the news document-classification workflow.
#[derive(Debug, Clone)]
pub struct NewsParams {
    /// Corpus file (one document per line).
    pub corpus_path: PathBuf,
    /// Gold mention spans CSV (labels derive from per-document counts).
    pub gold_path: PathBuf,
    /// Fraction of documents held out for evaluation.
    pub test_fraction: f64,
    /// A document is "person-dense" (label 1) at this many gold mentions.
    pub mention_threshold: usize,
    /// Name-gazetteer hit-count features wired in.
    pub feat_gazetteer: bool,
    /// Honorific-title cue features wired in.
    pub feat_titles: bool,
    /// Organization-keyword features wired in.
    pub feat_orgs: bool,
    /// Learner regularization.
    pub reg_param: f64,
    /// Learner epochs.
    pub epochs: usize,
    /// Metrics computed by the Reducer.
    pub metrics: Vec<MetricKind>,
}

impl NewsParams {
    /// Initial-version parameters for data rooted at `dir`.
    pub fn initial(dir: &Path) -> Self {
        NewsParams {
            corpus_path: dir.join("corpus.txt"),
            gold_path: dir.join("gold.csv"),
            test_fraction: 0.25,
            mention_threshold: 4,
            feat_gazetteer: true,
            feat_titles: false,
            feat_orgs: false,
            reg_param: 0.1,
            epochs: 8,
            metrics: vec![MetricKind::Accuracy, MetricKind::F1],
        }
    }

    /// Benchmark parameters: all five feature extractors wired in
    /// (maximum partitionable width) with few learner epochs, so the
    /// row-parallel extractors dominate the measured run.
    pub fn bench(dir: &Path) -> Self {
        NewsParams {
            feat_titles: true,
            feat_orgs: true,
            epochs: 2,
            ..NewsParams::initial(dir)
        }
    }
}

/// Crude whitespace tokenizer with punctuation trimmed — document-level
/// counting features do not need the NLP crate's offset bookkeeping.
fn rough_tokens(text: &str) -> impl Iterator<Item = &str> {
    text.split_whitespace()
        .map(|t| t.trim_matches(|c: char| !c.is_alphanumeric()))
        .filter(|t| !t.is_empty())
}

fn doc_feature_udf(
    tag: &str,
    feats: impl Fn(&str) -> Vec<(String, f64)> + Send + Sync + 'static,
) -> Udf {
    let tag = tag.to_string();
    Udf::new(format!("newsfeat:{tag}:v1"), move |inputs| {
        let corpus = inputs[0];
        let text_idx = corpus.column_index("text")?;
        let rows = corpus
            .rows()
            .iter()
            .map(|row| {
                let text = row.get(text_idx).as_str().unwrap_or("");
                let pairs: Vec<Value> = feats(text)
                    .into_iter()
                    .map(|(name, v)| helix_core::exec::feature_pair(&name, v))
                    .collect();
                Row(vec![Value::List(pairs)])
            })
            .collect();
        Ok(DataCollection::from_rows_unchecked(
            helix_core::exec::feats_schema(),
            rows,
        ))
    })
}

/// Label UDF: a document is positive when the gold file records at least
/// `threshold` person mentions for it.
fn udf_doc_labels(threshold: usize) -> Udf {
    Udf::new(format!("newslabel:thr={threshold}"), move |inputs| {
        let corpus = inputs[0];
        let gold = inputs[1];
        let gdoc = gold.column_index("doc_id")?;
        let mut counts: FxHashMap<i64, usize> = FxHashMap::default();
        for row in gold.rows() {
            *counts
                .entry(row.get(gdoc).as_int().unwrap_or(-1))
                .or_insert(0) += 1;
        }
        let doc_idx = corpus.column_index("doc_id")?;
        let rows = corpus
            .rows()
            .iter()
            .map(|row| {
                let doc = row.get(doc_idx).as_int().unwrap_or(-2);
                let dense = counts.get(&doc).copied().unwrap_or(0) >= threshold;
                Row(vec![Value::List(vec![helix_core::exec::feature_pair(
                    "label",
                    if dense { 1.0 } else { 0.0 },
                )])])
            })
            .collect();
        Ok(DataCollection::from_rows_unchecked(
            helix_core::exec::feats_schema(),
            rows,
        ))
    })
}

fn gazetteer_set() -> Arc<Vec<&'static str>> {
    // 2/3 subset, as in the IE task: informative but not an oracle.
    Arc::new(
        FIRST_NAMES
            .iter()
            .chain(LAST_NAMES.iter())
            .enumerate()
            .filter(|(i, _)| i % 3 != 0)
            .map(|(_, n)| *n)
            .collect(),
    )
}

/// Builds the news document-classification workflow: one corpus scan
/// fanning out into independent per-document feature extractors — the
/// widest of the three demo DAGs, and the one that gains most from wave
/// scheduling.
pub fn news_workflow(params: &NewsParams) -> Result<Workflow> {
    let mut w = Workflow::new("NewsDensity");
    let corpus = w.text_source("corpus", &params.corpus_path, params.test_fraction)?;
    let gold_src = w.csv_source("gold_src", &params.gold_path, None::<&Path>)?;
    let gold = w.csv_scanner(
        "gold",
        &gold_src,
        &[
            ("doc_id", DataType::Int),
            ("start", DataType::Int),
            ("end", DataType::Int),
        ],
    )?;
    let labels = w.udf(
        "labels",
        &[&corpus, &gold],
        udf_doc_labels(params.mention_threshold),
    )?;

    // Feature extractors are row-wise over the corpus (one feature row
    // per document), so the scheduler may data-parallelize each of them;
    // `labels` aggregates the gold file and stays a classic UDF.
    let length = w.row_udf(
        "feat_length",
        &[&corpus],
        doc_feature_udf("length", |text| {
            vec![
                ("tokens".into(), rough_tokens(text).count() as f64 / 10.0),
                ("sentences".into(), text.matches('.').count() as f64),
            ]
        }),
    )?;
    let caps = w.row_udf(
        "feat_caps",
        &[&corpus],
        doc_feature_udf("caps", |text| {
            let caps = rough_tokens(text)
                .filter(|t| t.chars().next().is_some_and(|c| c.is_uppercase()))
                .count();
            vec![("cap_tokens".into(), caps as f64 / 5.0)]
        }),
    )?;
    let gazetteer = {
        let names = gazetteer_set();
        w.row_udf(
            "feat_gazetteer",
            &[&corpus],
            doc_feature_udf("gazetteer", move |text| {
                let hits = rough_tokens(text).filter(|t| names.contains(t)).count();
                vec![("name_hits".into(), hits as f64)]
            }),
        )?
    };
    let titles = w.row_udf(
        "feat_titles",
        &[&corpus],
        doc_feature_udf("titles", |text| {
            let cues = text.matches("Dr.").count() + text.matches("Gov.").count();
            vec![("title_cues".into(), cues as f64)]
        }),
    )?;
    let orgs = w.row_udf(
        "feat_orgs",
        &[&corpus],
        doc_feature_udf("orgs", |text| {
            let hits = ORGS.iter().filter(|org| text.contains(*org)).count();
            vec![("org_hits".into(), hits as f64)]
        }),
    )?;

    let mut extractors = vec![&length, &caps];
    if params.feat_gazetteer {
        extractors.push(&gazetteer);
    }
    if params.feat_titles {
        extractors.push(&titles);
    }
    if params.feat_orgs {
        extractors.push(&orgs);
    }

    let articles = w.assemble("articles", &corpus, &extractors, &labels)?;
    let predictions = w.learner(
        "predictions",
        &articles,
        LearnerSpec {
            reg_param: params.reg_param,
            epochs: params.epochs,
            ..Default::default()
        },
    )?;
    let checked = w.evaluate(
        "checked",
        &predictions,
        EvalSpec {
            metrics: params.metrics.clone(),
            split: helix_core::SPLIT_TEST.into(),
        },
    )?;
    w.output(&predictions);
    w.output(&checked);
    Ok(w)
}

/// An iteration script for the news workload covering all three stages.
pub fn news_iterations() -> Vec<IterationSpec<NewsParams>> {
    vec![
        IterationSpec::new(
            "add honorific-title features",
            IterationStage::DataPreProcessing,
            |p: &mut NewsParams| {
                p.feat_titles = true;
            },
        ),
        IterationSpec::new(
            "decrease regularization",
            IterationStage::MachineLearning,
            |p: &mut NewsParams| {
                p.reg_param = 0.01;
            },
        ),
        IterationSpec::new(
            "add precision/recall metrics",
            IterationStage::Evaluation,
            |p: &mut NewsParams| {
                p.metrics = vec![
                    MetricKind::Accuracy,
                    MetricKind::F1,
                    MetricKind::Precision,
                    MetricKind::Recall,
                ];
            },
        ),
        IterationSpec::new(
            "add organization features",
            IterationStage::DataPreProcessing,
            |p: &mut NewsParams| {
                p.feat_orgs = true;
            },
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("helix-news-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn generator_is_deterministic() {
        let dir = tmpdir("det");
        let spec = NewsDataSpec {
            docs: 30,
            ..Default::default()
        };
        let d1 = generate_news(&dir, &spec).unwrap();
        let c1 = std::fs::read_to_string(&d1.corpus_path).unwrap();
        let d2 = generate_news(&dir, &spec).unwrap();
        let c2 = std::fs::read_to_string(&d2.corpus_path).unwrap();
        assert_eq!(c1, c2);
        assert_eq!(d1.mentions, d2.mentions);
    }

    #[test]
    fn gold_spans_point_at_person_names() {
        let dir = tmpdir("spans");
        let data = generate_news(
            &dir,
            &NewsDataSpec {
                docs: 40,
                ..Default::default()
            },
        )
        .unwrap();
        let corpus: Vec<String> = std::fs::read_to_string(&data.corpus_path)
            .unwrap()
            .lines()
            .map(String::from)
            .collect();
        let gold = std::fs::read_to_string(&data.gold_path).unwrap();
        let mut checked = 0;
        for line in gold.lines() {
            let parts: Vec<&str> = line.split(',').collect();
            let (doc, start, end): (usize, usize, usize) = (
                parts[0].parse().unwrap(),
                parts[1].parse().unwrap(),
                parts[2].parse().unwrap(),
            );
            let mention = &corpus[doc][start..end];
            let first_word = mention.split(' ').next().unwrap();
            assert!(
                FIRST_NAMES.contains(&first_word),
                "span `{mention}` does not start with a first name"
            );
            checked += 1;
        }
        assert!(checked > 20, "expected plenty of mentions, got {checked}");
    }

    #[test]
    fn news_workflow_builds_with_fanout_shape() {
        let dir = tmpdir("wf-shape");
        let params = NewsParams::initial(&dir);
        let w = news_workflow(&params).unwrap();
        // The corpus fans out into the wired extractors plus labels.
        let corpus = w.by_name("corpus").unwrap();
        let children = w.children()[corpus.index()].len();
        assert!(children >= 4, "expected wide fan-out, got {children}");
        // Optional feature groups exist but are sliced out until wired.
        let slice = helix_core::slicing::slice(&w).unwrap();
        assert!(!slice.active[w.by_name("feat_titles").unwrap().index()]);
        assert!(slice.active[w.by_name("feat_gazetteer").unwrap().index()]);
    }

    #[test]
    fn news_workflow_learns_person_density() {
        let dir = tmpdir("wf-learn");
        generate_news(
            &dir,
            &NewsDataSpec {
                docs: 300,
                ..Default::default()
            },
        )
        .unwrap();
        let params = NewsParams::initial(&dir);
        let w = news_workflow(&params).unwrap();
        let engine = std::sync::Arc::new(
            helix_core::Engine::new(helix_core::EngineConfig::helix(dir.join("store"))).unwrap(),
        );
        let mut session = helix_core::Session::new(engine, "news-test", w);
        let report = session.iterate().unwrap();
        let acc = report.metric("accuracy").unwrap();
        assert!(
            acc > 0.75,
            "gazetteer hit counts should separate dense docs, accuracy = {acc}"
        );
    }

    #[test]
    fn news_second_iteration_reuses() {
        let dir = tmpdir("wf-reuse");
        generate_news(
            &dir,
            &NewsDataSpec {
                docs: 200,
                ..Default::default()
            },
        )
        .unwrap();
        let params = NewsParams::initial(&dir);
        let engine = std::sync::Arc::new(
            helix_core::Engine::new(helix_core::EngineConfig::helix(dir.join("store"))).unwrap(),
        );
        let mut session =
            helix_core::Session::new(engine, "news-reuse", news_workflow(&params).unwrap());
        session.iterate().unwrap();
        // ML-only change via the typed session handle: the feature
        // extractors must all be reused.
        session
            .set_learner_param("predictions", helix_core::LearnerParam::RegParam(0.01))
            .unwrap();
        let report = session.iterate().unwrap();
        for feat in ["feat_length", "feat_caps", "feat_gazetteer"] {
            let node = report.nodes.iter().find(|n| n.name == feat).unwrap();
            assert_ne!(
                node.state,
                helix_core::NodeState::Compute,
                "{feat} must not recompute on an ML-only change"
            );
        }
    }

    #[test]
    fn news_iteration_script_covers_all_stages() {
        let iters = news_iterations();
        for stage in [
            IterationStage::DataPreProcessing,
            IterationStage::MachineLearning,
            IterationStage::Evaluation,
        ] {
            assert!(iters.iter().any(|i| i.stage == stage), "{stage:?}");
        }
    }

    #[test]
    fn corpus_contains_distractors() {
        let dir = tmpdir("distract");
        let data = generate_news(
            &dir,
            &NewsDataSpec {
                docs: 60,
                ..Default::default()
            },
        )
        .unwrap();
        let corpus = std::fs::read_to_string(&data.corpus_path).unwrap();
        assert!(ORGS.iter().any(|org| corpus.contains(org)), "orgs appear");
        assert!(
            PLACES.iter().any(|place| corpus.contains(place)),
            "places appear"
        );
    }
}
