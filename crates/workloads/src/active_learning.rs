//! The active-learning loop as a first-class workload: fetch the
//! predictions the model is least sure about, have an oracle label a
//! fresh batch, feed the labels back as a data delta, and retrain.
//!
//! This is the paper's label-driven iteration pattern made concrete over
//! the Census application. Each round exercises the whole incremental
//! stack end to end: [`helix_core::Session::uncertain_examples`] ranks
//! the test split by distance from the decision boundary,
//! [`helix_core::Session::append_data`] durably appends the oracle's
//! labels to the training CSV, and the retraining iteration recomputes
//! only the partitions downstream of the appended chunk — unchanged
//! partitions come back from the store (visible as
//! `IterationReport::chunks_reused`).

use crate::census;
use helix_core::{Result, SessionHandle};

/// Loop settings.
#[derive(Debug, Clone)]
pub struct ActiveLearningSpec {
    /// Label-and-retrain rounds to run.
    pub rounds: usize,
    /// Uncertain candidates fetched — and labels returned — per round.
    pub batch: usize,
    /// Oracle RNG seed (each round derives its own stream from it).
    pub seed: u64,
}

impl Default for ActiveLearningSpec {
    fn default() -> Self {
        ActiveLearningSpec {
            rounds: 3,
            batch: 32,
            seed: 11,
        }
    }
}

/// What one label-and-retrain round did.
#[derive(Debug, Clone)]
pub struct ActiveLearningRound {
    /// 0-based round number.
    pub round: usize,
    /// Uncertain candidates the ranking returned (≤ the requested batch).
    pub candidates: usize,
    /// Widest margin among the candidates (all ≤ 0.5 by construction).
    pub max_margin: f64,
    /// Labeled rows durably appended to the training split.
    pub appended: usize,
    /// Test accuracy after retraining, when the workflow evaluates it.
    pub accuracy: Option<f64>,
    /// Data-chunk partitions the retrain served from the store instead
    /// of recomputing — the incremental-data reuse signal.
    pub chunks_reused: usize,
    /// Whole nodes the retrain loaded from the store.
    pub loaded: usize,
}

/// Runs the loop against an already-created session whose workflow reads
/// the CSV source named `source`. Iterates once first if the session has
/// never run (the ranking needs materialized predictions). Returns one
/// record per round.
pub fn run_active_learning(
    session: &SessionHandle,
    source: &str,
    spec: &ActiveLearningSpec,
) -> Result<Vec<ActiveLearningRound>> {
    if session.iteration() == 0 {
        session.iterate()?;
    }
    let mut rounds = Vec::with_capacity(spec.rounds);
    for round in 0..spec.rounds {
        let candidates = session.uncertain_examples(spec.batch)?;
        let labels = census::labeled_rows(spec.batch, spec.seed.wrapping_add(round as u64));
        let appended = session.append_data(source, &labels)?;
        let report = session.iterate()?;
        rounds.push(ActiveLearningRound {
            round,
            candidates: candidates.len(),
            max_margin: candidates.iter().map(|c| c.margin).fold(0.0, f64::max),
            appended,
            accuracy: report.metric("accuracy"),
            chunks_reused: report.chunks_reused(),
            loaded: report.loaded(),
        });
    }
    Ok(rounds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::census::{census_workflow, generate_census, CensusDataSpec, CensusParams};
    use helix_core::{Engine, EngineConfig, SessionManager};
    use std::path::PathBuf;
    use std::sync::Arc;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("helix-al-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn loop_labels_retrains_and_reuses_upstream() {
        let dir = tmpdir("loop");
        generate_census(
            &dir,
            &CensusDataSpec {
                train_rows: 600,
                test_rows: 150,
                ..Default::default()
            },
        )
        .unwrap();
        let workflow = census_workflow(&CensusParams::initial(&dir)).unwrap();
        let engine = Arc::new(Engine::new(EngineConfig::helix(dir.join("store"))).unwrap());
        let manager = SessionManager::new(engine);
        let session = manager.create("oracle", workflow).unwrap();

        let spec = ActiveLearningSpec {
            rounds: 2,
            batch: 16,
            seed: 3,
        };
        let rounds = run_active_learning(&session, "data", &spec).unwrap();
        assert_eq!(rounds.len(), 2);
        for r in &rounds {
            assert_eq!(r.appended, 16, "every oracle label lands");
            assert!(r.candidates > 0, "ranking returns candidates");
            assert!(r.max_margin <= 0.5 + 1e-12);
            assert!(r.accuracy.is_some(), "retrain evaluates");
            assert!(
                r.chunks_reused > 0,
                "a data delta must serve unchanged partitions from the store"
            );
        }
        // 3 iterations total: the warm-up plus one per round.
        assert_eq!(session.iteration(), 3);
    }

    #[test]
    fn oracle_rows_are_deterministic_and_fully_labeled() {
        let a = census::labeled_rows(8, 42);
        let b = census::labeled_rows(8, 42);
        assert_eq!(a, b, "same seed, same labels");
        assert_ne!(a, census::labeled_rows(8, 43));
        for row in &a {
            assert!(!row.contains('?'), "the oracle answers every field");
            let label = row.rsplit(',').next().unwrap();
            assert!(label == "0" || label == "1");
        }
    }
}
