//! The information-extraction application (paper §3, Application 2):
//! person-mention extraction from news articles.
//!
//! Unlike Census, the input is unstructured text and the workflow is
//! dominated by pre-processing UDFs — sentence splitting, tokenization,
//! candidate extraction, and several feature extractors — "mirroring the
//! typical industry setting where extensive data ETL is necessary".

use crate::iterations::{IterationSpec, IterationStage};
use crate::news::{FIRST_NAMES, LAST_NAMES};
use helix_core::ops::{EvalSpec, LearnerSpec, MetricKind, Udf};
use helix_core::workflow::Workflow;
use helix_core::{HelixError, Result, SPLIT_COL};
use helix_dataflow::fx::FxHashSet;
use helix_dataflow::{DataCollection, DataType, Row, Schema, Value};
use helix_nlp::features::{candidate_features, FeatureConfig};
use helix_nlp::{extract_candidates, split_sentences, tokenize, Candidate, Gazetteer};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Parameters of the IE workflow that iterations mutate.
#[derive(Debug, Clone)]
pub struct IeParams {
    /// Corpus file (one document per line).
    pub corpus_path: PathBuf,
    /// Gold mention spans CSV.
    pub gold_path: PathBuf,
    /// Fraction of documents held out for evaluation.
    pub test_fraction: f64,
    /// Maximum candidate length in tokens.
    pub max_cand_len: usize,
    /// Context-word features wired in.
    pub feat_context: bool,
    /// Word-shape features wired in.
    pub feat_shape: bool,
    /// Gazetteer features wired in.
    pub feat_gazetteer: bool,
    /// Honorific-title cue wired in.
    pub feat_title: bool,
    /// Learner regularization.
    pub reg_param: f64,
    /// Learner epochs.
    pub epochs: usize,
    /// Metrics computed by the Reducer.
    pub metrics: Vec<MetricKind>,
}

impl IeParams {
    /// Initial-version parameters for data rooted at `dir`.
    pub fn initial(dir: &Path) -> Self {
        IeParams {
            corpus_path: dir.join("corpus.txt"),
            gold_path: dir.join("gold.csv"),
            test_fraction: 0.25,
            max_cand_len: 3,
            feat_context: false,
            feat_shape: false,
            feat_gazetteer: false,
            feat_title: false,
            reg_param: 0.1,
            epochs: 6,
            metrics: vec![MetricKind::F1],
        }
    }

    /// Benchmark parameters: every feature group wired in (maximum
    /// partitionable width) with few learner epochs, so the row-parallel
    /// UDF chain — sentences, candidates, feature groups — dominates the
    /// measured run.
    pub fn bench(dir: &Path) -> Self {
        IeParams {
            feat_context: true,
            feat_shape: true,
            feat_gazetteer: true,
            feat_title: true,
            epochs: 2,
            ..IeParams::initial(dir)
        }
    }
}

fn sentences_schema() -> Arc<Schema> {
    Schema::of(&[
        ("doc_id", DataType::Int),
        ("offset", DataType::Int),
        ("text", DataType::Str),
        (SPLIT_COL, DataType::Str),
    ])
}

fn candidates_schema() -> Arc<Schema> {
    Schema::of(&[
        (SPLIT_COL, DataType::Str),
        ("doc_id", DataType::Int),
        ("start", DataType::Int),
        ("end", DataType::Int),
        ("text", DataType::Str),
        ("sentence", DataType::Str),
        ("tok_start", DataType::Int),
        ("tok_end", DataType::Int),
    ])
}

/// The training-time gazetteers: a 2/3 subset of the generator's name
/// lists, so membership is informative but not an oracle.
fn gazetteers() -> (Gazetteer, Gazetteer) {
    let first = Gazetteer::from_names(
        FIRST_NAMES
            .iter()
            .enumerate()
            .filter(|(i, _)| i % 3 != 0)
            .map(|(_, n)| *n),
    );
    let last = Gazetteer::from_names(
        LAST_NAMES
            .iter()
            .enumerate()
            .filter(|(i, _)| i % 3 != 0)
            .map(|(_, n)| *n),
    );
    (first, last)
}

fn udf_sentences() -> Udf {
    Udf::new("sentences:v1", |inputs| {
        let corpus = inputs[0];
        let doc_idx = corpus.column_index("doc_id")?;
        let text_idx = corpus.column_index("text")?;
        let split_idx = corpus.column_index(SPLIT_COL)?;
        let mut rows = Vec::new();
        for row in corpus.rows() {
            let text = row.get(text_idx).as_str().unwrap_or("");
            for (start, _end, sentence) in split_sentences(text) {
                rows.push(Row(vec![
                    row.get(doc_idx).clone(),
                    Value::Int(start as i64),
                    Value::Str(sentence),
                    row.get(split_idx).clone(),
                ]));
            }
        }
        Ok(DataCollection::from_rows_unchecked(
            sentences_schema(),
            rows,
        ))
    })
}

fn udf_candidates(max_len: usize) -> Udf {
    Udf::new(format!("candidates:maxlen={max_len}"), move |inputs| {
        let sentences = inputs[0];
        let doc_idx = sentences.column_index("doc_id")?;
        let off_idx = sentences.column_index("offset")?;
        let text_idx = sentences.column_index("text")?;
        let split_idx = sentences.column_index(SPLIT_COL)?;
        let mut rows = Vec::new();
        for row in sentences.rows() {
            let sentence = row.get(text_idx).as_str().unwrap_or("");
            let offset = row.get(off_idx).as_int().unwrap_or(0);
            let tokens = tokenize(sentence);
            for cand in extract_candidates(&tokens, max_len) {
                rows.push(Row(vec![
                    row.get(split_idx).clone(),
                    row.get(doc_idx).clone(),
                    Value::Int(offset + cand.start as i64),
                    Value::Int(offset + cand.end as i64),
                    Value::Str(cand.text.clone()),
                    Value::Str(sentence.to_string()),
                    Value::Int(cand.token_start as i64),
                    Value::Int(cand.token_end as i64),
                ]));
            }
        }
        Ok(DataCollection::from_rows_unchecked(
            candidates_schema(),
            rows,
        ))
    })
}

fn udf_labels() -> Udf {
    Udf::new("labels:v1", |inputs| {
        let candidates = inputs[0];
        let gold = inputs[1];
        let gdoc = gold.column_index("doc_id")?;
        let gstart = gold.column_index("start")?;
        let gend = gold.column_index("end")?;
        let mut gold_set: FxHashSet<(i64, i64, i64)> = FxHashSet::default();
        for row in gold.rows() {
            gold_set.insert((
                row.get(gdoc).as_int().unwrap_or(-1),
                row.get(gstart).as_int().unwrap_or(-1),
                row.get(gend).as_int().unwrap_or(-1),
            ));
        }
        let cdoc = candidates.column_index("doc_id")?;
        let cstart = candidates.column_index("start")?;
        let cend = candidates.column_index("end")?;
        let rows = candidates
            .rows()
            .iter()
            .map(|row| {
                let key = (
                    row.get(cdoc).as_int().unwrap_or(-2),
                    row.get(cstart).as_int().unwrap_or(-2),
                    row.get(cend).as_int().unwrap_or(-2),
                );
                let label = if gold_set.contains(&key) { 1.0 } else { 0.0 };
                Row(vec![Value::List(vec![helix_core::exec::feature_pair(
                    "label", label,
                )])])
            })
            .collect();
        Ok(DataCollection::from_rows_unchecked(
            helix_core::exec::feats_schema(),
            rows,
        ))
    })
}

/// Rebuilds the candidate and tokens context for a candidates row.
fn row_candidate(
    row: &Row,
    candidates: &DataCollection,
) -> Result<(Vec<helix_nlp::Token>, Candidate)> {
    let sentence = row
        .get(candidates.column_index("sentence")?)
        .as_str()
        .ok_or_else(|| HelixError::Exec("candidate sentence missing".into()))?;
    let tok_start = row
        .get(candidates.column_index("tok_start")?)
        .as_int()
        .unwrap_or(0) as usize;
    let tok_end = row
        .get(candidates.column_index("tok_end")?)
        .as_int()
        .unwrap_or(0) as usize;
    let text = row
        .get(candidates.column_index("text")?)
        .as_str()
        .unwrap_or("")
        .to_string();
    let tokens = tokenize(sentence);
    let (start, end) = if tok_start < tokens.len() && tok_end <= tokens.len() && tok_end > tok_start
    {
        (tokens[tok_start].start, tokens[tok_end - 1].end)
    } else {
        (0, 0)
    };
    Ok((
        tokens,
        Candidate {
            token_start: tok_start,
            token_end: tok_end,
            start,
            end,
            text,
        },
    ))
}

/// A feature-group UDF: emits fragments for exactly one [`FeatureConfig`]
/// group (plus the always-on bias), aligned with the candidates collection.
fn udf_feature_group(tag: &str, config: FeatureConfig) -> Udf {
    let (first, last) = gazetteers();
    Udf::new(format!("feat:{tag}:v1"), move |inputs| {
        let candidates = inputs[0];
        let mut rows = Vec::with_capacity(candidates.len());
        for row in candidates.rows() {
            let (tokens, cand) = row_candidate(row, candidates)
                .map_err(|e| helix_dataflow::DataflowError::Udf(e.to_string()))?;
            let feats = candidate_features(&cand, &tokens, &first, &last, &config);
            let pairs: Vec<Value> = feats
                .into_iter()
                .map(|(name, v)| helix_core::exec::feature_pair(&name, v))
                .collect();
            rows.push(Row(vec![Value::List(pairs)]));
        }
        Ok(DataCollection::from_rows_unchecked(
            helix_core::exec::feats_schema(),
            rows,
        ))
    })
}

fn group_config(
    lexical: bool,
    context: bool,
    shape: bool,
    gazetteer: bool,
    title: bool,
    length: bool,
) -> FeatureConfig {
    FeatureConfig {
        lexical,
        context,
        shape,
        gazetteer,
        title_cue: title,
        length,
    }
}

/// Builds the IE workflow for the given parameters.
pub fn ie_workflow(params: &IeParams) -> Result<Workflow> {
    let mut w = Workflow::new("PersonIE");
    let corpus = w.text_source("corpus", &params.corpus_path, params.test_fraction)?;
    let gold_src = w.csv_source("gold_src", &params.gold_path, None::<&Path>)?;
    let gold = w.csv_scanner(
        "gold",
        &gold_src,
        &[
            ("doc_id", DataType::Int),
            ("start", DataType::Int),
            ("end", DataType::Int),
        ],
    )?;
    // Pre-processing and feature UDFs are declared row-wise (each emits
    // rows derived only from the corresponding rows of its first input),
    // so the scheduler may split them into data-parallel partitions.
    let sentences = w.row_udf("sentences", &[&corpus], udf_sentences())?;
    let candidates = w.row_udf(
        "candidates",
        &[&sentences],
        udf_candidates(params.max_cand_len),
    )?;
    // `labels` joins against the whole gold set — not partitionable.
    let labels = w.udf("labels", &[&candidates, &gold], udf_labels())?;

    let lexical = w.row_udf(
        "feat_lexical",
        &[&candidates],
        udf_feature_group(
            "lexical",
            group_config(true, false, false, false, false, true),
        ),
    )?;
    let context = w.row_udf(
        "feat_context",
        &[&candidates],
        udf_feature_group(
            "context",
            group_config(false, true, false, false, false, false),
        ),
    )?;
    let shape = w.row_udf(
        "feat_shape",
        &[&candidates],
        udf_feature_group(
            "shape",
            group_config(false, false, true, false, false, false),
        ),
    )?;
    let gazetteer = w.row_udf(
        "feat_gazetteer",
        &[&candidates],
        udf_feature_group(
            "gazetteer",
            group_config(false, false, false, true, false, false),
        ),
    )?;
    let title = w.row_udf(
        "feat_title",
        &[&candidates],
        udf_feature_group(
            "title",
            group_config(false, false, false, false, true, false),
        ),
    )?;

    let mut extractors = vec![&lexical];
    if params.feat_context {
        extractors.push(&context);
    }
    if params.feat_shape {
        extractors.push(&shape);
    }
    if params.feat_gazetteer {
        extractors.push(&gazetteer);
    }
    if params.feat_title {
        extractors.push(&title);
    }

    let mentions = w.assemble("mentions", &candidates, &extractors, &labels)?;
    let predictions = w.learner(
        "predictions",
        &mentions,
        LearnerSpec {
            reg_param: params.reg_param,
            epochs: params.epochs,
            ..Default::default()
        },
    )?;
    let checked = w.evaluate(
        "checked",
        &predictions,
        EvalSpec {
            metrics: params.metrics.clone(),
            split: helix_core::SPLIT_TEST.into(),
        },
    )?;
    w.output(&predictions);
    w.output(&checked);
    Ok(w)
}

/// The Fig. 2(a) iteration script for the IE task.
pub fn ie_iterations() -> Vec<IterationSpec<IeParams>> {
    vec![
        IterationSpec::new(
            "add context features",
            IterationStage::DataPreProcessing,
            |p: &mut IeParams| {
                p.feat_context = true;
            },
        ),
        IterationSpec::new(
            "decrease regularization",
            IterationStage::MachineLearning,
            |p: &mut IeParams| {
                p.reg_param = 0.01;
            },
        ),
        IterationSpec::new(
            "add precision/recall metrics",
            IterationStage::Evaluation,
            |p: &mut IeParams| {
                p.metrics = vec![MetricKind::F1, MetricKind::Precision, MetricKind::Recall];
            },
        ),
        IterationSpec::new(
            "add gazetteer features",
            IterationStage::DataPreProcessing,
            |p: &mut IeParams| {
                p.feat_gazetteer = true;
            },
        ),
        IterationSpec::new(
            "double training epochs",
            IterationStage::MachineLearning,
            |p: &mut IeParams| {
                p.epochs *= 2;
            },
        ),
        IterationSpec::new(
            "add shape features",
            IterationStage::DataPreProcessing,
            |p: &mut IeParams| {
                p.feat_shape = true;
            },
        ),
        IterationSpec::new(
            "add accuracy metric",
            IterationStage::Evaluation,
            |p: &mut IeParams| {
                p.metrics.push(MetricKind::Accuracy);
            },
        ),
        IterationSpec::new(
            "add honorific-title features",
            IterationStage::DataPreProcessing,
            |p: &mut IeParams| {
                p.feat_title = true;
            },
        ),
        IterationSpec::new(
            "longer candidates (4 tokens)",
            IterationStage::DataPreProcessing,
            |p: &mut IeParams| {
                p.max_cand_len = 4;
            },
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::news::{generate_news, NewsDataSpec};

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("helix-ie-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn setup(tag: &str, docs: usize) -> (PathBuf, IeParams) {
        let dir = tmpdir(tag);
        generate_news(
            &dir,
            &NewsDataSpec {
                docs,
                ..Default::default()
            },
        )
        .unwrap();
        let params = IeParams::initial(&dir);
        (dir, params)
    }

    #[test]
    fn workflow_builds_with_expected_shape() {
        let (_dir, params) = setup("shape", 20);
        let w = ie_workflow(&params).unwrap();
        assert!(w.by_name("sentences").is_some());
        assert!(w.by_name("feat_gazetteer").is_some());
        let slice = helix_core::slicing::slice(&w).unwrap();
        // Optional feature groups start unwired and sliced out.
        assert!(!slice.active[w.by_name("feat_context").unwrap().index()]);
        assert!(slice.active[w.by_name("feat_lexical").unwrap().index()]);
    }

    #[test]
    fn end_to_end_learns_to_find_people() {
        let (dir, mut params) = setup("e2e", 250);
        // Full feature set for the accuracy check.
        params.feat_context = true;
        params.feat_shape = true;
        params.feat_gazetteer = true;
        params.feat_title = true;
        let w = ie_workflow(&params).unwrap();
        let engine = std::sync::Arc::new(
            helix_core::Engine::new(helix_core::EngineConfig::helix(dir.join("store"))).unwrap(),
        );
        let mut session = helix_core::Session::new(engine, "ie-test", w);
        let report = session.iterate().unwrap();
        let f1 = report.metric("f1").unwrap();
        assert!(f1 > 0.7, "IE should find most people, f1 = {f1}");
    }

    #[test]
    fn feature_iterations_improve_or_hold_f1() {
        let (dir, mut params) = setup("iters", 150);
        let engine = std::sync::Arc::new(
            helix_core::Engine::new(helix_core::EngineConfig::helix(dir.join("store"))).unwrap(),
        );
        let mut session =
            helix_core::Session::new(engine, "ie-iters", ie_workflow(&params).unwrap());
        let base = session.iterate().unwrap();
        let base_f1 = base.metric("f1").unwrap();
        params.feat_gazetteer = true;
        params.feat_context = true;
        session.replace_workflow(ie_workflow(&params).unwrap());
        let better = session.iterate().unwrap();
        let better_f1 = better.metric("f1").unwrap();
        assert!(
            better_f1 >= base_f1 - 0.02,
            "features should not tank F1: {base_f1} -> {better_f1}"
        );
    }

    #[test]
    fn iteration_script_covers_all_stages() {
        let iters = ie_iterations();
        assert_eq!(iters.len(), 9);
        for stage in [
            IterationStage::DataPreProcessing,
            IterationStage::MachineLearning,
            IterationStage::Evaluation,
        ] {
            assert!(iters.iter().any(|i| i.stage == stage));
        }
    }

    #[test]
    fn eval_iteration_reuses_heavily() {
        let (dir, mut params) = setup("reuse", 120);
        let engine = std::sync::Arc::new(
            helix_core::Engine::new(helix_core::EngineConfig::helix(dir.join("store"))).unwrap(),
        );
        let mut session =
            helix_core::Session::new(engine, "ie-reuse", ie_workflow(&params).unwrap());
        session.iterate().unwrap();
        // Evaluation-only change: everything upstream should be reusable.
        params.metrics = vec![MetricKind::F1, MetricKind::Precision];
        session.replace_workflow(ie_workflow(&params).unwrap());
        let report = session.iterate().unwrap();
        let prep: Vec<_> = report
            .nodes
            .iter()
            .filter(|n| n.name == "candidates" || n.name == "sentences")
            .collect();
        assert!(
            prep.iter()
                .all(|n| n.state != helix_core::NodeState::Compute),
            "pre-processing must not recompute on an eval-only change"
        );
    }
}
