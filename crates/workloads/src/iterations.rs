//! Iteration scripts: scripted human-in-the-loop modification sequences.

/// The paper's iteration categories (Fig. 2 coloring).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IterationStage {
    /// Purple: data-pre-processing change (e.g. adding a feature).
    DataPreProcessing,
    /// Orange: ML change (e.g. changing regularization).
    MachineLearning,
    /// Green: evaluation / post-processing change (e.g. changing metrics).
    Evaluation,
}

impl IterationStage {
    /// Single-letter tag used in benchmark tables (`P`/`M`/`E`).
    pub fn letter(&self) -> char {
        match self {
            IterationStage::DataPreProcessing => 'P',
            IterationStage::MachineLearning => 'M',
            IterationStage::Evaluation => 'E',
        }
    }
}

/// One scripted modification to a workflow's parameters.
pub struct IterationSpec<P> {
    /// What the "user" did, for logs and version summaries.
    pub description: &'static str,
    /// The paper's category for this change.
    pub stage: IterationStage,
    /// Mutation applied to the workflow parameters before re-running.
    pub apply: Box<dyn Fn(&mut P) + Send + Sync>,
}

impl<P> IterationSpec<P> {
    /// Creates a spec.
    pub fn new(
        description: &'static str,
        stage: IterationStage,
        apply: impl Fn(&mut P) + Send + Sync + 'static,
    ) -> Self {
        IterationSpec {
            description,
            stage,
            apply: Box::new(apply),
        }
    }
}

impl<P> std::fmt::Debug for IterationSpec<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IterationSpec")
            .field("description", &self.description)
            .field("stage", &self.stage)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_applies_mutation() {
        let spec = IterationSpec::new("bump", IterationStage::MachineLearning, |x: &mut i32| {
            *x += 1;
        });
        let mut v = 1;
        (spec.apply)(&mut v);
        assert_eq!(v, 2);
        assert_eq!(spec.stage.letter(), 'M');
        assert!(format!("{spec:?}").contains("bump"));
    }

    #[test]
    fn letters_are_distinct() {
        assert_eq!(IterationStage::DataPreProcessing.letter(), 'P');
        assert_eq!(IterationStage::Evaluation.letter(), 'E');
    }
}
